// Package dtw implements Dynamic Time Warping and the series normalization
// Perspector's TrendScore requires (§III-B): the distance between two
// counter time series of possibly different lengths, computed after
// mapping each series' values through its own empirical CDF (y-axis,
// bounded to [0,100]) and resampling onto an execution-time percentile
// grid (x-axis).
package dtw

import (
	"fmt"
	"math"
	"sync"

	"perspector/internal/stat"
)

// Distancer computes DTW distances with reusable DP scratch buffers, so
// the O(W²) pairwise loops of the TrendScore allocate nothing per pair.
// It also applies an exactness-preserving pruned dynamic program (after
// Silva & Batista's PrunedDTW): the cost of one cheap monotone warping
// path upper-bounds the distance, and any DP cell whose cumulative cost
// exceeds that bound can never lie on the optimal path, so whole runs of
// columns are skipped. Results are bit-identical to the full DP — the
// surviving cells see exactly the same additions in the same order.
//
// A Distancer is not safe for concurrent use; parallel callers keep one
// per worker.
type Distancer struct {
	prev, cur []float64
	cum       []float64 // NormalizeSeries scratch
}

// NewDistancer returns an empty Distancer; buffers grow on first use.
func NewDistancer() *Distancer { return &Distancer{} }

// rows returns the two DP rows sized for m+1 columns.
func (dz *Distancer) rows(m int) (prev, cur []float64) {
	if cap(dz.prev) < m+1 {
		dz.prev = make([]float64, m+1)
		dz.cur = make([]float64, m+1)
	}
	return dz.prev[:m+1], dz.cur[:m+1]
}

// pool backs the package-level convenience functions so one-shot callers
// still reuse scratch across calls.
var pool = sync.Pool{New: func() any { return NewDistancer() }}

// Distance returns the classic DTW distance between two series using
// absolute difference as the local cost and the full dynamic program.
// It panics if either series is empty.
func Distance(a, b []float64) float64 {
	dz := pool.Get().(*Distancer)
	defer pool.Put(dz)
	return dz.Distance(a, b)
}

// DistanceBanded returns the DTW distance constrained to a Sakoe–Chiba band
// of the given half-width. A band of 0 (or any band at least as wide as
// the length difference... specifically >= |len(a)-len(b)| and wide enough)
// means "no constraint" when band <= 0. It returns an error when a series
// is empty or when the band is too narrow to admit any warping path.
func DistanceBanded(a, b []float64, band int) (float64, error) {
	dz := pool.Get().(*Distancer)
	defer pool.Put(dz)
	return dz.DistanceBanded(a, b, band)
}

// Distance is DistanceBanded with no band; it panics if either series is
// empty.
func (dz *Distancer) Distance(a, b []float64) float64 {
	d, err := dz.DistanceBanded(a, b, 0)
	if err != nil {
		panic(err)
	}
	return d
}

// DistanceBanded computes the (optionally Sakoe–Chiba-banded) DTW
// distance on the Distancer's reusable buffers. Semantics match the
// package-level DistanceBanded exactly.
func (dz *Distancer) DistanceBanded(a, b []float64, band int) (float64, error) {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return 0, fmt.Errorf("dtw: empty series (lengths %d, %d)", n, m)
	}
	unbounded := band <= 0
	if !unbounded && band < abs(n-m) {
		return 0, fmt.Errorf("dtw: band %d narrower than length difference %d", band, abs(n-m))
	}
	if unbounded {
		return dz.pruned(a, b), nil
	}
	d := dz.banded(a, b, band)
	// With a band, Inf means the band admitted no warping path.
	if math.IsInf(d, 1) {
		return 0, fmt.Errorf("dtw: band %d admits no warping path for lengths %d, %d", band, n, m)
	}
	return d, nil
}

// banded is the Sakoe–Chiba DP on the reusable buffers; it returns +Inf
// when the band admits no warping path. Because every in-band cell
// minimizes over a subset of the full DP's predecessors, and float
// addition of a non-negative cost is monotone in its operand, each banded
// cell value dominates the corresponding full-DP value — so the result is
// also a valid upper bound for the pruned unbanded DP.
func (dz *Distancer) banded(a, b []float64, band int) float64 {
	n, m := len(a), len(b)
	inf := math.Inf(1)
	prev, cur := dz.rows(m)
	prev[0] = 0
	// Only in-band cells are ever touched, so each row costs O(band), not
	// O(m). [ps,pe] tracks the previous row's written window; reads
	// outside it hit stale buffer contents and are guarded to Inf, which
	// is exactly the value the Inf-filled full-width DP would hold there.
	ps, pe := 0, 0
	for i := 1; i <= n; i++ {
		lo, hi := 1, m
		// Scale the band to handle unequal lengths (standard practice).
		center := i * m / n
		if lo < center-band {
			lo = center - band
		}
		if hi > center+band {
			hi = center + band
		}
		cur[lo-1] = inf // left edge of the in-row deletion chain
		for j := lo; j <= hi; j++ {
			best := inf
			if j-1 >= ps && j-1 <= pe {
				best = prev[j-1] // match
			}
			if j >= ps && j <= pe && prev[j] < best {
				best = prev[j] // insertion
			}
			if cur[j-1] < best {
				best = cur[j-1] // deletion
			}
			cur[j] = math.Abs(a[i-1]-b[j-1]) + best
		}
		ps, pe = lo, hi
		prev, cur = cur, prev
	}
	return prev[m]
}

// upperBound returns the cheaper of two O(n+m) single-path costs: the
// diagonal-then-edge path and a greedy min-local-cost walk. Each is a
// valid monotone warping path accumulated front to back, which is exactly
// the sequential float sum the DP computes for that path, so either cost
// upper-bounds the DP's minimum under the same rounding. The greedy walk
// tracks x-shifted series (where the diagonal is loose) closely, which is
// what makes the pruned DP's alive band narrow.
func upperBound(a, b []float64) float64 {
	n, m := len(a), len(b)
	i, j := 0, 0
	diag := math.Abs(a[0] - b[0])
	for i < n-1 || j < m-1 {
		if i < n-1 {
			i++
		}
		if j < m-1 {
			j++
		}
		diag += math.Abs(a[i] - b[j])
	}

	i, j = 0, 0
	greedy := math.Abs(a[0] - b[0])
	for i < n-1 || j < m-1 {
		switch {
		case i == n-1:
			j++
		case j == m-1:
			i++
		default:
			down := math.Abs(a[i+1] - b[j])
			right := math.Abs(a[i] - b[j+1])
			d := math.Abs(a[i+1] - b[j+1])
			if d <= down && d <= right {
				i, j = i+1, j+1
			} else if down <= right {
				i++
			} else {
				j++
			}
		}
		greedy += math.Abs(a[i] - b[j])
	}
	if greedy < diag {
		return greedy
	}
	return diag
}

// pruned is the unbanded DP with upper-bound pruning. Invariant: a cell
// whose full-DP value is <= ub gets exactly the full-DP value (its
// minimizing predecessor is also <= ub, hence alive and exact by
// induction); cells above ub may be skipped or inflated but can never
// supply the minimum of an alive cell. The final cell's value is <= ub,
// so the result is bit-identical to the full DP.
func (dz *Distancer) pruned(a, b []float64) float64 {
	n, m := len(a), len(b)
	ub := upperBound(a, b)
	prev, cur := dz.rows(m)
	inf := math.Inf(1)
	prev[0] = 0
	// [ps,pe] spans the previous row's alive (<= ub) cells; all prev reads
	// below stay inside it, so the buffers need no Inf pre-fill. Each row
	// splits into guard-free regions so the hot middle loop matches the
	// classic DP's cost per cell.
	ps, pe := 0, 0
	for i := 1; i <= n; i++ {
		ai := a[i-1]
		start := ps
		if start < 1 {
			start = 1
		}
		cur[start-1] = inf
		nps, npe := -1, -1
		j := start
		// Left edge j == ps: prev[ps-1] is outside the window and the
		// in-row chain starts at Inf, so the only predecessor is prev[ps]
		// (the window's first cell, alive hence finite).
		if ps >= 1 {
			v := math.Abs(ai-b[ps-1]) + prev[ps]
			cur[ps] = v
			if v <= ub {
				nps, npe = ps, ps
			}
			j = ps + 1
		}
		// Tight middle j in [ps+1, pe]: all three predecessors are inside
		// the window — no guards.
		for ; j <= pe; j++ {
			best := prev[j-1]
			if prev[j] < best {
				best = prev[j]
			}
			if cur[j-1] < best {
				best = cur[j-1]
			}
			v := math.Abs(ai-b[j-1]) + best
			cur[j] = v
			if v <= ub {
				if nps < 0 {
					nps = j
				}
				npe = j
			}
		}
		// Right edge j == pe+1: prev[pe+1] is outside the window.
		if j == pe+1 && j <= m {
			best := prev[j-1]
			if cur[j-1] < best {
				best = cur[j-1]
			}
			v := math.Abs(ai-b[j-1]) + best
			cur[j] = v
			if v <= ub {
				if nps < 0 {
					nps = j
				}
				npe = j
			}
			j++
		}
		// Dead tail j > pe+1: no prev-row predecessor; the row stays
		// alive only through the in-row chain, and ends when it dies.
		for ; j <= m && cur[j-1] <= ub; j++ {
			v := math.Abs(ai-b[j-1]) + cur[j-1]
			cur[j] = v
			if v <= ub {
				if nps < 0 {
					nps = j
				}
				npe = j
			}
		}
		if nps < 0 {
			// Unreachable for a finite valid upper bound (the optimal
			// path crosses every row at cost <= ub); degrade safely on
			// pathological inputs (NaNs) by running the full DP.
			return dz.full(a, b)
		}
		ps, pe = nps, npe
		prev, cur = cur, prev
	}
	return prev[m]
}

// full is the classic unpruned, unbanded DP on the reusable buffers.
func (dz *Distancer) full(a, b []float64) float64 {
	n, m := len(a), len(b)
	prev, cur := dz.rows(m)
	for j := range prev {
		prev[j] = math.Inf(1)
	}
	prev[0] = 0
	for i := 1; i <= n; i++ {
		cur[0] = math.Inf(1)
		for j := 1; j <= m; j++ {
			cost := math.Abs(a[i-1] - b[j-1])
			best := prev[j]
			if prev[j-1] < best {
				best = prev[j-1]
			}
			if cur[j-1] < best {
				best = cur[j-1]
			}
			cur[j] = cost + best
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Path returns the optimal warping path as index pairs (i into a, j into b)
// along with the DTW distance, using the full dynamic program. It panics if
// either series is empty.
func Path(a, b []float64) ([][2]int, float64) {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		panic(fmt.Sprintf("dtw: Path with empty series (lengths %d, %d)", n, m))
	}
	dp := make([][]float64, n+1)
	for i := range dp {
		dp[i] = make([]float64, m+1)
		for j := range dp[i] {
			dp[i][j] = math.Inf(1)
		}
	}
	dp[0][0] = 0
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			cost := math.Abs(a[i-1] - b[j-1])
			best := dp[i-1][j]
			if dp[i-1][j-1] < best {
				best = dp[i-1][j-1]
			}
			if dp[i][j-1] < best {
				best = dp[i][j-1]
			}
			dp[i][j] = cost + best
		}
	}
	// Backtrack.
	var path [][2]int
	i, j := n, m
	for i > 1 || j > 1 {
		path = append(path, [2]int{i - 1, j - 1})
		diag, up, left := math.Inf(1), math.Inf(1), math.Inf(1)
		if i > 1 && j > 1 {
			diag = dp[i-1][j-1]
		}
		if i > 1 {
			up = dp[i-1][j]
		}
		if j > 1 {
			left = dp[i][j-1]
		}
		switch {
		case diag <= up && diag <= left:
			i, j = i-1, j-1
		case up <= left:
			i--
		default:
			j--
		}
	}
	path = append(path, [2]int{0, 0})
	// Reverse into forward order.
	for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
		path[l], path[r] = path[r], path[l]
	}
	return path, dp[n][m]
}

// NormalizeSeries applies the paper's §III-B1 two-axis normalization to a
// raw counter delta time series (event counts per sample interval):
//
//   - y-axis: the series is converted to its CDF — the cumulative fraction
//     of the metric's total events observed up to each sample, scaled to
//     [0,100]. A steady workload becomes the straight diagonal; phases
//     appear as knees in the curve. This bounds pointwise distances to
//     [0,100] and erases absolute magnitudes (Fig. 1): a workload with 10⁹
//     LLC misses and one with 10³ compare purely by *when* their events
//     happen.
//   - x-axis: the curve is resampled onto an execution-time percentile
//     grid with gridPoints+1 samples, so different execution lengths
//     compare directly.
//
// A series with no events at all maps to the diagonal (the "uninformative
// steady" shape), making it indistinguishable from a constant-rate
// workload — both are phase-free.
func NormalizeSeries(series []float64, gridPoints int) []float64 {
	dz := pool.Get().(*Distancer)
	defer pool.Put(dz)
	return dz.NormalizeSeries(series, gridPoints)
}

// NormalizeSeries is the package-level NormalizeSeries on the
// Distancer's reusable cumulative-sum scratch buffer. The returned grid
// is always freshly allocated (callers keep it).
func (dz *Distancer) NormalizeSeries(series []float64, gridPoints int) []float64 {
	n := len(series)
	if n == 0 {
		return make([]float64, gridPoints+1)
	}
	// cum[0] = 0 anchors the curve at the start of execution, so sample i
	// sits at time fraction i/n exactly; without the anchor, series of
	// different lengths carry an O(1/n) systematic offset that shows up
	// as fake DTW distance between identically-shaped workloads.
	if cap(dz.cum) < n+1 {
		dz.cum = make([]float64, n+1)
	}
	cum := dz.cum[:n+1]
	cum[0] = 0
	total := 0.0
	for i, v := range series {
		if v < 0 {
			v = 0 // deltas are counts; clamp defensively
		}
		total += v
		cum[i+1] = total
	}
	if total == 0 {
		// No events: diagonal.
		for i := range cum {
			cum[i] = 100 * float64(i) / float64(n)
		}
	} else {
		inv := 100 / total
		for i := range cum {
			cum[i] *= inv
		}
	}
	return stat.ResampleToPercentiles(cum, gridPoints)
}

// NormalizeSeriesValueCDF is the alternative reading of §III-B1 that maps
// each value through the series' own empirical value-CDF instead of
// accumulating events over time. It is kept for the ablation study: it is
// also magnitude-invariant, but it amplifies sampling noise on steady
// series (every flat series rank-transforms to full-scale noise), which
// inverts the paper's LMbench/Nbench trend results. See DESIGN.md.
func NormalizeSeriesValueCDF(series []float64, gridPoints int) []float64 {
	if len(series) == 0 {
		return make([]float64, gridPoints+1)
	}
	return stat.ResampleToPercentiles(stat.CDFNormalize(series), gridPoints)
}

// NormalizedDistance is the TrendScore building block: DTW between two raw
// series after NormalizeSeries on both, using the given percentile grid.
func NormalizedDistance(a, b []float64, gridPoints int) float64 {
	dz := pool.Get().(*Distancer)
	defer pool.Put(dz)
	return dz.Distance(dz.NormalizeSeries(a, gridPoints), dz.NormalizeSeries(b, gridPoints))
}
