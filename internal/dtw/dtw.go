// Package dtw implements Dynamic Time Warping and the series normalization
// Perspector's TrendScore requires (§III-B): the distance between two
// counter time series of possibly different lengths, computed after
// mapping each series' values through its own empirical CDF (y-axis,
// bounded to [0,100]) and resampling onto an execution-time percentile
// grid (x-axis).
package dtw

import (
	"fmt"
	"math"

	"perspector/internal/stat"
)

// Distance returns the classic DTW distance between two series using
// absolute difference as the local cost and the full dynamic program.
// It panics if either series is empty.
func Distance(a, b []float64) float64 {
	d, err := DistanceBanded(a, b, 0)
	if err != nil {
		panic(err)
	}
	return d
}

// DistanceBanded returns the DTW distance constrained to a Sakoe–Chiba band
// of the given half-width. A band of 0 (or any band at least as wide as
// the length difference... specifically >= |len(a)-len(b)| and wide enough)
// means "no constraint" when band <= 0. It returns an error when a series
// is empty or when the band is too narrow to admit any warping path.
func DistanceBanded(a, b []float64, band int) (float64, error) {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return 0, fmt.Errorf("dtw: empty series (lengths %d, %d)", n, m)
	}
	unbounded := band <= 0
	if !unbounded && band < abs(n-m) {
		return 0, fmt.Errorf("dtw: band %d narrower than length difference %d", band, abs(n-m))
	}

	// Two-row DP to keep memory at O(m).
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := range prev {
		prev[j] = math.Inf(1)
	}
	prev[0] = 0
	for i := 1; i <= n; i++ {
		cur[0] = math.Inf(1)
		lo, hi := 1, m
		if !unbounded {
			// Scale the band to handle unequal lengths (standard practice).
			center := i * m / n
			if lo < center-band {
				lo = center - band
			}
			if hi > center+band {
				hi = center + band
			}
		}
		for j := 1; j <= m; j++ {
			if j < lo || j > hi {
				cur[j] = math.Inf(1)
				continue
			}
			cost := math.Abs(a[i-1] - b[j-1])
			best := prev[j] // insertion
			if prev[j-1] < best {
				best = prev[j-1] // match
			}
			if cur[j-1] < best {
				best = cur[j-1] // deletion
			}
			cur[j] = cost + best
		}
		prev, cur = cur, prev
	}
	d := prev[m]
	// Without a band every cell is reachable, so an infinite result can only
	// come from float overflow in the local cost — pass it through. With a
	// band, Inf means the band admitted no warping path.
	if !unbounded && math.IsInf(d, 1) {
		return 0, fmt.Errorf("dtw: band %d admits no warping path for lengths %d, %d", band, n, m)
	}
	return d, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Path returns the optimal warping path as index pairs (i into a, j into b)
// along with the DTW distance, using the full dynamic program. It panics if
// either series is empty.
func Path(a, b []float64) ([][2]int, float64) {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		panic(fmt.Sprintf("dtw: Path with empty series (lengths %d, %d)", n, m))
	}
	dp := make([][]float64, n+1)
	for i := range dp {
		dp[i] = make([]float64, m+1)
		for j := range dp[i] {
			dp[i][j] = math.Inf(1)
		}
	}
	dp[0][0] = 0
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			cost := math.Abs(a[i-1] - b[j-1])
			best := dp[i-1][j]
			if dp[i-1][j-1] < best {
				best = dp[i-1][j-1]
			}
			if dp[i][j-1] < best {
				best = dp[i][j-1]
			}
			dp[i][j] = cost + best
		}
	}
	// Backtrack.
	var path [][2]int
	i, j := n, m
	for i > 1 || j > 1 {
		path = append(path, [2]int{i - 1, j - 1})
		diag, up, left := math.Inf(1), math.Inf(1), math.Inf(1)
		if i > 1 && j > 1 {
			diag = dp[i-1][j-1]
		}
		if i > 1 {
			up = dp[i-1][j]
		}
		if j > 1 {
			left = dp[i][j-1]
		}
		switch {
		case diag <= up && diag <= left:
			i, j = i-1, j-1
		case up <= left:
			i--
		default:
			j--
		}
	}
	path = append(path, [2]int{0, 0})
	// Reverse into forward order.
	for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
		path[l], path[r] = path[r], path[l]
	}
	return path, dp[n][m]
}

// NormalizeSeries applies the paper's §III-B1 two-axis normalization to a
// raw counter delta time series (event counts per sample interval):
//
//   - y-axis: the series is converted to its CDF — the cumulative fraction
//     of the metric's total events observed up to each sample, scaled to
//     [0,100]. A steady workload becomes the straight diagonal; phases
//     appear as knees in the curve. This bounds pointwise distances to
//     [0,100] and erases absolute magnitudes (Fig. 1): a workload with 10⁹
//     LLC misses and one with 10³ compare purely by *when* their events
//     happen.
//   - x-axis: the curve is resampled onto an execution-time percentile
//     grid with gridPoints+1 samples, so different execution lengths
//     compare directly.
//
// A series with no events at all maps to the diagonal (the "uninformative
// steady" shape), making it indistinguishable from a constant-rate
// workload — both are phase-free.
func NormalizeSeries(series []float64, gridPoints int) []float64 {
	n := len(series)
	if n == 0 {
		return make([]float64, gridPoints+1)
	}
	// cum[0] = 0 anchors the curve at the start of execution, so sample i
	// sits at time fraction i/n exactly; without the anchor, series of
	// different lengths carry an O(1/n) systematic offset that shows up
	// as fake DTW distance between identically-shaped workloads.
	cum := make([]float64, n+1)
	total := 0.0
	for i, v := range series {
		if v < 0 {
			v = 0 // deltas are counts; clamp defensively
		}
		total += v
		cum[i+1] = total
	}
	if total == 0 {
		// No events: diagonal.
		for i := range cum {
			cum[i] = 100 * float64(i) / float64(n)
		}
	} else {
		inv := 100 / total
		for i := range cum {
			cum[i] *= inv
		}
	}
	return stat.ResampleToPercentiles(cum, gridPoints)
}

// NormalizeSeriesValueCDF is the alternative reading of §III-B1 that maps
// each value through the series' own empirical value-CDF instead of
// accumulating events over time. It is kept for the ablation study: it is
// also magnitude-invariant, but it amplifies sampling noise on steady
// series (every flat series rank-transforms to full-scale noise), which
// inverts the paper's LMbench/Nbench trend results. See DESIGN.md.
func NormalizeSeriesValueCDF(series []float64, gridPoints int) []float64 {
	if len(series) == 0 {
		return make([]float64, gridPoints+1)
	}
	return stat.ResampleToPercentiles(stat.CDFNormalize(series), gridPoints)
}

// NormalizedDistance is the TrendScore building block: DTW between two raw
// series after NormalizeSeries on both, using the given percentile grid.
func NormalizedDistance(a, b []float64, gridPoints int) float64 {
	return Distance(NormalizeSeries(a, gridPoints), NormalizeSeries(b, gridPoints))
}
