package mat

import (
	"fmt"
	"math"
	"sort"
)

// Eigen holds the eigendecomposition of a symmetric matrix: Values[i] is
// the i-th eigenvalue and the i-th column of Vectors is its unit
// eigenvector. Pairs are sorted by descending eigenvalue.
type Eigen struct {
	Values  []float64
	Vectors *Matrix
}

// jacobiMaxSweeps bounds the cyclic Jacobi iteration. Convergence for the
// small, well-conditioned covariance matrices Perspector produces takes a
// handful of sweeps; 100 sweeps is a generous safety margin.
const jacobiMaxSweeps = 100

// SymEigen computes the eigendecomposition of a symmetric matrix using the
// cyclic Jacobi method. The input must be square and symmetric within tol;
// it is not modified. Results are deterministic.
func SymEigen(a *Matrix, tol float64) (*Eigen, error) {
	n := a.rows
	if a.cols != n {
		return nil, fmt.Errorf("mat: SymEigen on non-square %dx%d matrix", a.rows, a.cols)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(a.At(i, j)-a.At(j, i)) > tol+1e-9*math.Max(math.Abs(a.At(i, j)), 1) {
				return nil, fmt.Errorf("mat: SymEigen input not symmetric at (%d,%d): %g vs %g",
					i, j, a.At(i, j), a.At(j, i))
			}
		}
	}
	if n == 0 {
		return &Eigen{Values: nil, Vectors: New(0, 0)}, nil
	}

	w := a.Clone()
	v := New(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}

	for sweep := 0; sweep < jacobiMaxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if math.Sqrt(2*off) <= tol {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) <= tol/float64(n*n) {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c

				// Apply the rotation G(p,q,θ)ᵀ W G(p,q,θ).
				for k := 0; k < n; k++ {
					wkp, wkq := w.At(k, p), w.At(k, q)
					w.Set(k, p, c*wkp-s*wkq)
					w.Set(k, q, s*wkp+c*wkq)
				}
				for k := 0; k < n; k++ {
					wpk, wqk := w.At(p, k), w.At(q, k)
					w.Set(p, k, c*wpk-s*wqk)
					w.Set(q, k, s*wpk+c*wqk)
				}
				// Accumulate eigenvectors.
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}

	// Extract and sort by descending eigenvalue.
	type pair struct {
		val float64
		idx int
	}
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{w.At(i, i), i}
	}
	sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].val > pairs[j].val })

	e := &Eigen{Values: make([]float64, n), Vectors: New(n, n)}
	for out, p := range pairs {
		e.Values[out] = p.val
		// Fix the sign convention: largest-magnitude component positive.
		maxAbs, sign := 0.0, 1.0
		for k := 0; k < n; k++ {
			if av := math.Abs(v.At(k, p.idx)); av > maxAbs {
				maxAbs = av
				if v.At(k, p.idx) < 0 {
					sign = -1
				} else {
					sign = 1
				}
			}
		}
		for k := 0; k < n; k++ {
			e.Vectors.Set(k, out, sign*v.At(k, p.idx))
		}
	}
	return e, nil
}
