package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSymEigenDiagonal(t *testing.T) {
	a := FromRows([][]float64{{3, 0}, {0, 1}})
	e, err := SymEigen(a, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.Values[0]-3) > 1e-10 || math.Abs(e.Values[1]-1) > 1e-10 {
		t.Fatalf("Values = %v, want [3 1]", e.Values)
	}
}

func TestSymEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	e, err := SymEigen(a, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.Values[0]-3) > 1e-10 || math.Abs(e.Values[1]-1) > 1e-10 {
		t.Fatalf("Values = %v, want [3 1]", e.Values)
	}
	// Eigenvector for λ=3 is (1,1)/√2 up to sign.
	v0 := []float64{e.Vectors.At(0, 0), e.Vectors.At(1, 0)}
	if math.Abs(math.Abs(v0[0])-1/math.Sqrt2) > 1e-10 ||
		math.Abs(v0[0]-v0[1]) > 1e-10 {
		t.Fatalf("first eigenvector = %v", v0)
	}
}

func TestSymEigenReconstruction(t *testing.T) {
	a := FromRows([][]float64{
		{4, 1, 0.5},
		{1, 3, 0.2},
		{0.5, 0.2, 1},
	})
	e, err := SymEigen(a, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild A = V Λ Vᵀ.
	n := 3
	lam := New(n, n)
	for i := 0; i < n; i++ {
		lam.Set(i, i, e.Values[i])
	}
	rec := e.Vectors.Mul(lam).Mul(e.Vectors.T())
	if !rec.Equal(a, 1e-8) {
		t.Fatalf("V Λ Vᵀ = \n%v want \n%v", rec, a)
	}
}

func TestSymEigenOrthonormalVectors(t *testing.T) {
	a := FromRows([][]float64{
		{5, 2, 1, 0},
		{2, 4, 0.5, 0.1},
		{1, 0.5, 3, 0.2},
		{0, 0.1, 0.2, 2},
	})
	e, err := SymEigen(a, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	vtv := e.Vectors.T().Mul(e.Vectors)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(vtv.At(i, j)-want) > 1e-8 {
				t.Fatalf("VᵀV not identity at (%d,%d): %v", i, j, vtv.At(i, j))
			}
		}
	}
}

func TestSymEigenSortedDescending(t *testing.T) {
	a := FromRows([][]float64{
		{1, 0.3, 0},
		{0.3, 7, 0.1},
		{0, 0.1, 4},
	})
	e, err := SymEigen(a, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(e.Values); i++ {
		if e.Values[i] > e.Values[i-1]+1e-12 {
			t.Fatalf("eigenvalues not sorted: %v", e.Values)
		}
	}
}

func TestSymEigenTraceInvariant(t *testing.T) {
	// Sum of eigenvalues equals the trace, for random symmetric matrices.
	f := func(raw [10]float64) bool {
		n := 4
		a := New(n, n)
		k := 0
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := math.Mod(raw[k], 10)
				if math.IsNaN(v) || math.IsInf(v, 0) {
					v = 1
				}
				a.Set(i, j, v)
				a.Set(j, i, v)
				k++
			}
		}
		e, err := SymEigen(a, 1e-12)
		if err != nil {
			return false
		}
		trace, sum := 0.0, 0.0
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
			sum += e.Values[i]
		}
		return math.Abs(trace-sum) < 1e-6*(1+math.Abs(trace))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSymEigenNonSquare(t *testing.T) {
	if _, err := SymEigen(New(2, 3), 1e-12); err == nil {
		t.Fatal("non-square input accepted")
	}
}

func TestSymEigenAsymmetric(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 1}})
	if _, err := SymEigen(a, 1e-12); err == nil {
		t.Fatal("asymmetric input accepted")
	}
}

func TestSymEigenEmpty(t *testing.T) {
	e, err := SymEigen(New(0, 0), 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Values) != 0 {
		t.Fatal("empty matrix should yield no eigenvalues")
	}
}

func TestSymEigenPSDCovariance(t *testing.T) {
	// Covariance matrices are PSD: all eigenvalues >= 0 (within tolerance).
	m := FromRows([][]float64{
		{1, 2, 0.5}, {2, 4.1, 1}, {0.3, 1.2, 2}, {4, 0.1, 0.2}, {2.5, 2.5, 2.5},
	})
	e, err := SymEigen(m.Covariance(), 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range e.Values {
		if v < -1e-9 {
			t.Fatalf("negative eigenvalue %v for PSD matrix", v)
		}
	}
}

func BenchmarkSymEigen14(b *testing.B) {
	// 14x14 is the covariance size for the full Table-IV counter set.
	n := 14
	a := New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := float64((i*7+j*3)%11) / 11
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
		a.Set(i, i, float64(i)+2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SymEigen(a, 1e-12); err != nil {
			b.Fatal(err)
		}
	}
}
