// Package mat implements the dense matrix and vector operations Perspector
// needs: construction, slicing by rows/columns, multiplication, covariance,
// and a symmetric eigendecomposition (cyclic Jacobi) that underpins PCA.
//
// Matrices are row-major and sized at construction. The package favours
// explicitness over generality: only the operations used by the analysis
// pipeline are provided, and all of them validate their shape arguments.
package mat

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense, row-major matrix of float64.
type Matrix struct {
	rows, cols int
	data       []float64
}

// New returns a zero-initialized rows×cols matrix.
// It panics if either dimension is negative.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: New(%d, %d) with negative dimension", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices. All rows must have equal length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("mat: FromRows row %d has %d cols, want %d", i, len(r), cols))
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d, %d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range %d", i, m.rows))
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// RowView returns row i as a slice aliasing the matrix storage.
// Mutating the returned slice mutates the matrix.
func (m *Matrix) RowView(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range %d", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: col %d out of range %d", j, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetRow copies v into row i.
func (m *Matrix) SetRow(i int, v []float64) {
	if len(v) != m.cols {
		panic(fmt.Sprintf("mat: SetRow with %d values, want %d", len(v), m.cols))
	}
	copy(m.RowView(i), v)
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Mul returns the matrix product m × b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul shape mismatch %dx%d × %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := New(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		mRow := m.data[i*m.cols : (i+1)*m.cols]
		outRow := out.data[i*out.cols : (i+1)*out.cols]
		for k, mik := range mRow {
			if mik == 0 {
				continue
			}
			bRow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bkj := range bRow {
				outRow[j] += mik * bkj
			}
		}
	}
	return out
}

// HStack returns the horizontal concatenation [m | b]. Row counts must match.
func (m *Matrix) HStack(b *Matrix) *Matrix {
	if m.rows != b.rows {
		panic(fmt.Sprintf("mat: HStack row mismatch %d vs %d", m.rows, b.rows))
	}
	out := New(m.rows, m.cols+b.cols)
	for i := 0; i < m.rows; i++ {
		copy(out.data[i*out.cols:], m.data[i*m.cols:(i+1)*m.cols])
		copy(out.data[i*out.cols+m.cols:], b.data[i*b.cols:(i+1)*b.cols])
	}
	return out
}

// VStack returns the vertical concatenation of m on top of b.
// Column counts must match.
func (m *Matrix) VStack(b *Matrix) *Matrix {
	if m.cols != b.cols {
		panic(fmt.Sprintf("mat: VStack col mismatch %d vs %d", m.cols, b.cols))
	}
	out := New(m.rows+b.rows, m.cols)
	copy(out.data, m.data)
	copy(out.data[m.rows*m.cols:], b.data)
	return out
}

// SelectRows returns a new matrix with the given rows, in order.
func (m *Matrix) SelectRows(idx []int) *Matrix {
	out := New(len(idx), m.cols)
	for k, i := range idx {
		copy(out.RowView(k), m.RowView(i))
	}
	return out
}

// SelectCols returns a new matrix with the given columns, in order.
func (m *Matrix) SelectCols(idx []int) *Matrix {
	out := New(m.rows, len(idx))
	for i := 0; i < m.rows; i++ {
		for k, j := range idx {
			out.data[i*out.cols+k] = m.At(i, j)
		}
	}
	return out
}

// ColMeans returns the per-column mean vector.
func (m *Matrix) ColMeans() []float64 {
	means := make([]float64, m.cols)
	if m.rows == 0 {
		return means
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			means[j] += v
		}
	}
	inv := 1 / float64(m.rows)
	for j := range means {
		means[j] *= inv
	}
	return means
}

// Covariance returns the sample covariance matrix of the columns of m
// (cols×cols), treating rows as observations. It uses the n−1 denominator.
// With fewer than two rows the result is all zeros.
func (m *Matrix) Covariance() *Matrix {
	cov := New(m.cols, m.cols)
	if m.rows < 2 {
		return cov
	}
	means := m.ColMeans()
	inv := 1 / float64(m.rows-1)
	centered := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			centered[j] = v - means[j]
		}
		for a := 0; a < m.cols; a++ {
			ca := centered[a]
			if ca == 0 {
				continue
			}
			covRow := cov.data[a*m.cols : (a+1)*m.cols]
			for b := a; b < m.cols; b++ {
				covRow[b] += ca * centered[b]
			}
		}
	}
	for a := 0; a < m.cols; a++ {
		for b := a; b < m.cols; b++ {
			v := cov.data[a*m.cols+b] * inv
			cov.data[a*m.cols+b] = v
			cov.data[b*m.cols+a] = v
		}
	}
	return cov
}

// Equal reports whether m and b have the same shape and elements within tol.
func (m *Matrix) Equal(b *Matrix, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%9.4f", m.At(i, j))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Dist returns the Euclidean distance between two equal-length vectors.
func Dist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: Dist length mismatch %d vs %d", len(a), len(b)))
	}
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	sum := 0.0
	for i := range a {
		sum += a[i] * b[i]
	}
	return sum
}
