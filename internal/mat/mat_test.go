package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewAndAtSet(t *testing.T) {
	m := New(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape = %dx%d, want 2x3", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatalf("At(1,2) = %v", m.At(1, 2))
	}
	if m.At(0, 0) != 0 {
		t.Fatal("zero value not zero")
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1, 2) did not panic")
		}
	}()
	New(-1, 2)
}

func TestAtPanicsOutOfRange(t *testing.T) {
	m := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range did not panic")
		}
	}()
	m.At(2, 0)
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("shape %dx%d", m.Rows(), m.Cols())
	}
	if m.At(2, 1) != 6 {
		t.Fatalf("At(2,1) = %v", m.At(2, 1))
	}
}

func TestFromRowsEmpty(t *testing.T) {
	m := FromRows(nil)
	if m.Rows() != 0 || m.Cols() != 0 {
		t.Fatalf("empty FromRows shape %dx%d", m.Rows(), m.Cols())
	}
}

func TestFromRowsRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestRowColCopies(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	r := m.Row(0)
	r[0] = 99
	if m.At(0, 0) != 1 {
		t.Fatal("Row did not return a copy")
	}
	c := m.Col(1)
	if c[0] != 2 || c[1] != 4 {
		t.Fatalf("Col(1) = %v", c)
	}
	c[0] = 99
	if m.At(0, 1) != 2 {
		t.Fatal("Col did not return a copy")
	}
}

func TestRowViewAliases(t *testing.T) {
	m := New(2, 2)
	m.RowView(1)[0] = 7
	if m.At(1, 0) != 7 {
		t.Fatal("RowView does not alias")
	}
}

func TestSetRow(t *testing.T) {
	m := New(2, 3)
	m.SetRow(1, []float64{7, 8, 9})
	if m.At(1, 0) != 7 || m.At(1, 2) != 9 {
		t.Fatalf("SetRow row = %v", m.Row(1))
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("T shape %dx%d", tr.Rows(), tr.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !c.Equal(want, 1e-12) {
		t.Fatalf("Mul = \n%v want \n%v", c, want)
	}
}

func TestMulIdentity(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	id := New(3, 3)
	for i := 0; i < 3; i++ {
		id.Set(i, i, 1)
	}
	if !a.Mul(id).Equal(a, 1e-12) {
		t.Fatal("A×I != A")
	}
}

func TestMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mul shape mismatch did not panic")
		}
	}()
	New(2, 3).Mul(New(2, 3))
}

func TestHStackVStack(t *testing.T) {
	a := FromRows([][]float64{{1}, {2}})
	b := FromRows([][]float64{{3}, {4}})
	h := a.HStack(b)
	if h.Rows() != 2 || h.Cols() != 2 || h.At(0, 1) != 3 || h.At(1, 0) != 2 {
		t.Fatalf("HStack = \n%v", h)
	}
	v := a.VStack(b)
	if v.Rows() != 4 || v.Cols() != 1 || v.At(2, 0) != 3 {
		t.Fatalf("VStack = \n%v", v)
	}
}

func TestSelectRowsCols(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	r := m.SelectRows([]int{2, 0})
	if r.Rows() != 2 || r.At(0, 0) != 7 || r.At(1, 2) != 3 {
		t.Fatalf("SelectRows = \n%v", r)
	}
	c := m.SelectCols([]int{1})
	if c.Cols() != 1 || c.At(2, 0) != 8 {
		t.Fatalf("SelectCols = \n%v", c)
	}
}

func TestColMeans(t *testing.T) {
	m := FromRows([][]float64{{1, 10}, {3, 20}})
	means := m.ColMeans()
	if means[0] != 2 || means[1] != 15 {
		t.Fatalf("ColMeans = %v", means)
	}
}

func TestColMeansEmpty(t *testing.T) {
	means := New(0, 3).ColMeans()
	for _, v := range means {
		if v != 0 {
			t.Fatalf("empty ColMeans = %v", means)
		}
	}
}

func TestCovarianceKnown(t *testing.T) {
	// Two perfectly correlated columns.
	m := FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	cov := m.Covariance()
	if math.Abs(cov.At(0, 0)-1) > 1e-12 {
		t.Fatalf("var(col0) = %v, want 1", cov.At(0, 0))
	}
	if math.Abs(cov.At(1, 1)-4) > 1e-12 {
		t.Fatalf("var(col1) = %v, want 4", cov.At(1, 1))
	}
	if math.Abs(cov.At(0, 1)-2) > 1e-12 {
		t.Fatalf("cov(0,1) = %v, want 2", cov.At(0, 1))
	}
	if cov.At(0, 1) != cov.At(1, 0) {
		t.Fatal("covariance not symmetric")
	}
}

func TestCovarianceSingleRow(t *testing.T) {
	cov := FromRows([][]float64{{1, 2, 3}}).Covariance()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if cov.At(i, j) != 0 {
				t.Fatal("single-row covariance should be zero")
			}
		}
	}
}

func TestDistDot(t *testing.T) {
	if d := Dist([]float64{0, 0}, []float64{3, 4}); math.Abs(d-5) > 1e-12 {
		t.Fatalf("Dist = %v, want 5", d)
	}
	if d := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); d != 32 {
		t.Fatalf("Dot = %v, want 32", d)
	}
}

func TestDistMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dist length mismatch did not panic")
		}
	}()
	Dist([]float64{1}, []float64{1, 2})
}

func TestCloneIndependence(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(vals [6]float64) bool {
		m := FromRows([][]float64{vals[:3], vals[3:]})
		return m.T().T().Equal(m, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistProperties(t *testing.T) {
	// Symmetry and triangle inequality on random 3-vectors.
	f := func(a, b, c [3]float64) bool {
		ab := Dist(a[:], b[:])
		ba := Dist(b[:], a[:])
		ac := Dist(a[:], c[:])
		cb := Dist(c[:], b[:])
		return ab == ba && ab <= ac+cb+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
