package metric

import (
	"context"
	"fmt"
	"runtime/pprof"

	"perspector/internal/mat"
	"perspector/internal/obs"
	"perspector/internal/par"
	"perspector/internal/perf"
	"perspector/internal/stage"
)

// ScoreSuites drives the registry over every suite: build one Artifacts
// per suite, joint-normalize across all of them (Eq. 9–10, only if a
// registered metric asks for it), then fan the suites out and run the
// metrics in registration order, skipping any metric whose capability
// needs the measurement cannot satisfy.
//
// A nil registry means DefaultRegistry (the four paper scores). Errors
// carry stage tags: per-metric failures are *stage.Error values tagged
// with stage.Score and the suite; a cancellation that fires between
// suites is tagged with the run's own stage (Compare for multi-suite
// runs, Score for a single suite). Results are bit-identical at any
// worker count: the per-suite fan-out writes disjoint slots and each
// metric reduces in fixed serial order.
func ScoreSuites(ctx context.Context, sms []*perf.SuiteMeasurement, opts Options, reg *Registry) ([]Scores, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if len(sms) == 0 {
		return nil, fmt.Errorf("metric: ScoreSuites with no suites")
	}
	if reg == nil {
		reg = DefaultRegistry()
	}
	runStage := stage.Compare
	if len(sms) == 1 {
		runStage = stage.Score
	}
	_, artSpan := obs.Start(ctx, "artifacts")
	arts := make([]*Artifacts, len(sms))
	for i, sm := range sms {
		arts[i] = NewArtifacts(sm, opts)
	}
	artSpan.End()
	if reg.needs(func(c Capabilities) bool { return c.NeedsJointNorm }) {
		_, jnSpan := obs.Start(ctx, "joint_norm")
		raw := make([]*mat.Matrix, len(sms))
		for i, a := range arts {
			raw[i] = a.Raw()
		}
		normed, err := JointNormalize(raw)
		jnSpan.End()
		if err != nil {
			return nil, stage.Wrap(runStage, "", "", err)
		}
		for i, a := range arts {
			a.JointNorm = normed[i]
		}
	}
	return scoreArtifacts(ctx, arts, reg, runStage)
}

// scoreArtifacts fans the suites out and runs the registry's metrics in
// registration order over each suite's Artifacts — the scoring half of
// ScoreSuites, shared with IncrementalRun so an appended measurement is
// scored by the same code that scores a batch run.
//
// Every suite's scores are independent of the others once the joint
// bounds are fixed, and each metric is itself deterministic, so out[i]
// is the same at any worker count. The first error in suite order is
// returned, matching the serial loop.
func scoreArtifacts(ctx context.Context, arts []*Artifacts, reg *Registry, runStage stage.Stage) ([]Scores, error) {
	out := make([]Scores, len(arts))
	err := par.DoErrCtx(ctx, len(arts), func(ctx context.Context, _, i int) error {
		a := arts[i]
		out[i].Suite = a.Meas.Suite
		hasSeries := a.HasSeries()
		sctx, span := obs.Start(ctx, "score", obs.String("suite", a.Meas.Suite))
		defer span.End()
		var suiteErr error
		pprof.Do(sctx, pprof.Labels("suite", a.Meas.Suite, "stage", "score"), func(ctx context.Context) {
			for _, m := range reg.Metrics() {
				req := m.Requires()
				if req.NeedsSeries && !hasSeries {
					continue // capability unmet: slot stays zero
				}
				// Per-metric memo: when every input version the metric's
				// capabilities map to is unchanged since the last compute,
				// the stored value IS what recomputing would produce (the
				// metrics are deterministic functions of those inputs), so
				// e.g. a sample-only append skips the k-means sweep and PCA
				// entirely. Batch runs build fresh Artifacts per call and
				// never hit this.
				key := a.memoKeyFor(req)
				if v, ok := a.memoLookup(m.Name(), key); ok {
					if err := out[i].set(m.Name(), v); err != nil {
						suiteErr = stage.Wrap(stage.Score, a.Meas.Suite, "", err)
						return
					}
					continue
				}
				mctx, msp := obs.Start(ctx, "metric."+m.Name(), obs.String("suite", a.Meas.Suite))
				v, err := m.Compute(mctx, a)
				msp.End()
				if err != nil {
					suiteErr = stage.Wrap(stage.Score, a.Meas.Suite, "", err)
					return
				}
				a.memoStore(m.Name(), key, v)
				if err := out[i].set(m.Name(), v); err != nil {
					suiteErr = stage.Wrap(stage.Score, a.Meas.Suite, "", err)
					return
				}
			}
		})
		return suiteErr
	})
	if err != nil {
		// Covers the path where ctx fired before any metric failed: DoErr
		// returns the bare ctx.Err(), which still deserves a stage tag.
		return nil, stage.Wrap(runStage, "", "", err)
	}
	return out, nil
}

// ScoreSuite scores one suite in isolation (joint normalization
// degenerates to the suite's own bounds).
func ScoreSuite(ctx context.Context, sm *perf.SuiteMeasurement, opts Options, reg *Registry) (Scores, error) {
	res, err := ScoreSuites(ctx, []*perf.SuiteMeasurement{sm}, opts, reg)
	if err != nil {
		return Scores{}, err
	}
	return res[0], nil
}

// ClusterScore computes the §III-A score for one suite on its own
// normalization — the standalone entry point used by focused scoring and
// subset search, bypassing the registry.
func ClusterScore(sm *perf.SuiteMeasurement, opts Options) (float64, error) {
	if err := opts.Validate(); err != nil {
		return 0, err
	}
	return clusterMetric{}.Compute(context.Background(), NewArtifacts(sm, opts))
}

// TrendScore computes the §III-B score for one suite. Unlike the engine
// path, a measurement without series is an error here: the caller asked
// for the trend specifically.
func TrendScore(sm *perf.SuiteMeasurement, opts Options) (float64, error) {
	if err := opts.Validate(); err != nil {
		return 0, err
	}
	return trendMetric{}.Compute(context.Background(), NewArtifacts(sm, opts))
}

// CoverageScore computes the §III-C score on an already-normalized
// matrix (joint normalization is the caller's job — see ScoreSuites).
func CoverageScore(xNorm *mat.Matrix, opts Options) (float64, error) {
	if err := opts.Validate(); err != nil {
		return 0, err
	}
	return coverageMetric{}.Compute(context.Background(), &Artifacts{Opts: opts, JointNorm: xNorm})
}

// SpreadScore computes the §III-D score on an already-normalized matrix.
func SpreadScore(xNorm *mat.Matrix, opts Options) (float64, error) {
	if err := opts.Validate(); err != nil {
		return 0, err
	}
	return spreadMetric{}.Compute(context.Background(), &Artifacts{Opts: opts, JointNorm: xNorm})
}
