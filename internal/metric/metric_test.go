package metric

import (
	"context"
	"errors"
	"testing"

	"perspector/internal/stage"
	"perspector/internal/suites"

	"perspector/internal/perf"
)

// testMeasurement simulates a trimmed nbench: small enough for table
// tests, large enough that every metric produces a nonzero score.
func testMeasurement(t *testing.T) *perf.SuiteMeasurement {
	t.Helper()
	cfg := suites.DefaultConfig()
	cfg.Instructions = 20_000
	cfg.Samples = 10
	s, err := suites.ByName("nbench", cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Specs = s.Specs[:4]
	m, err := suites.RunContext(context.Background(), s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func scoreWith(t *testing.T, m *perf.SuiteMeasurement, reg *Registry) Scores {
	t.Helper()
	s, err := ScoreSuite(context.Background(), m, DefaultOptions(), reg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCapabilitySkipsTrendWithoutSeries: a totals-only measurement (no
// time series) must not fail scoring — the trend metric's needs-series
// capability check skips it, and the three totals-based scores are
// bit-identical to the full-series run.
func TestCapabilitySkipsTrendWithoutSeries(t *testing.T) {
	m := testMeasurement(t)
	full := scoreWith(t, m, nil)
	if full.Trend == 0 {
		t.Fatal("full measurement produced no trend score")
	}
	totals := scoreWith(t, TotalsOnly(m), nil)
	if totals.Trend != 0 {
		t.Fatalf("totals-only trend = %v, want 0 (skipped)", totals.Trend)
	}
	if totals.Cluster != full.Cluster || totals.Coverage != full.Coverage || totals.Spread != full.Spread {
		t.Fatalf("totals-based scores changed:\n  full   %+v\n  totals %+v", full, totals)
	}
}

// TestRegistryWithout runs the engine under every single-metric removal
// and checks exactly that score is absent.
func TestRegistryWithout(t *testing.T) {
	m := testMeasurement(t)
	full := scoreWith(t, m, nil)
	cases := []struct {
		remove string
		pick   func(Scores) float64
	}{
		{MetricCluster, func(s Scores) float64 { return s.Cluster }},
		{MetricTrend, func(s Scores) float64 { return s.Trend }},
		{MetricCoverage, func(s Scores) float64 { return s.Coverage }},
		{MetricSpread, func(s Scores) float64 { return s.Spread }},
	}
	for _, tc := range cases {
		t.Run(tc.remove, func(t *testing.T) {
			got := scoreWith(t, m, DefaultRegistry().Without(tc.remove))
			if tc.pick(got) != 0 {
				t.Fatalf("removed metric %s still scored %v", tc.remove, tc.pick(got))
			}
			for _, other := range cases {
				if other.remove == tc.remove {
					continue
				}
				if other.pick(got) != other.pick(full) {
					t.Fatalf("removing %s changed %s: %v != %v",
						tc.remove, other.remove, other.pick(got), other.pick(full))
				}
			}
		})
	}
}

func TestNewRegistryRejectsDuplicates(t *testing.T) {
	ms := DefaultRegistry().Metrics()
	if _, err := NewRegistry(ms[0], ms[0]); err == nil {
		t.Fatal("duplicate metric name accepted")
	}
}

func TestScoresSetUnknownName(t *testing.T) {
	var s Scores
	if err := s.set("bogus", 1); err == nil {
		t.Fatal("unknown score name accepted")
	}
}

// TestScoreSuitesCancelled: a cancelled context must surface as a
// stage-tagged cancellation, not a success or an untyped error.
func TestScoreSuitesCancelled(t *testing.T) {
	m := testMeasurement(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ScoreSuites(ctx, []*perf.SuiteMeasurement{m, m}, DefaultOptions(), nil)
	if err == nil {
		t.Fatal("cancelled scoring succeeded")
	}
	if !stage.Canceled(err) {
		t.Fatalf("error not recognized as cancellation: %v", err)
	}
	var se *stage.Error
	if !errors.As(err, &se) {
		t.Fatalf("error carries no stage tag: %v", err)
	}
	// After cancellation the engine must still work on a fresh context —
	// no poisoned shared state, no stuck workers.
	if _, err := ScoreSuite(context.Background(), m, DefaultOptions(), nil); err != nil {
		t.Fatalf("engine unusable after cancelled run: %v", err)
	}
}

// TestTotalsOnlyRegistryWithTrendAlone: if the registry holds only the
// trend metric and the input has no series, every slot stays zero but
// the run still succeeds.
func TestTotalsOnlyRegistryWithTrendAlone(t *testing.T) {
	m := TotalsOnly(testMeasurement(t))
	reg := DefaultRegistry().Without(MetricCluster, MetricCoverage, MetricSpread)
	got := scoreWith(t, m, reg)
	want := Scores{Suite: m.Suite}
	if got != want {
		t.Fatalf("got %+v, want zero scores", got)
	}
}
