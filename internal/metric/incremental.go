package metric

import (
	"context"
	"fmt"
	"sort"

	"perspector/internal/mat"
	"perspector/internal/obs"
	"perspector/internal/par"
	"perspector/internal/perf"
	"perspector/internal/stage"
)

// IncrementalRun is a scoring run whose measurements grow over time: new
// workloads append, existing workloads receive counter/series chunks,
// and every Scores call re-scores the current state by *updating* the
// cached artifacts rather than rebuilding them — online normalization
// bounds, one-row distance-matrix growth, windowed pairwise-DTW updates,
// and incremental joint-norm propagation across the suites of a compare
// run. The batch path (ScoreSuites over the same measurements) is the
// exact-recompute fallback and the golden oracle: every Scores result is
// bit-identical to a fresh batch run of the accumulated data.
//
// An IncrementalRun is not safe for concurrent use; callers serialize
// appends and scoring (the jobs stream layer runs one goroutine per
// stream). The run takes ownership of the measurements passed in.
type IncrementalRun struct {
	opts Options
	reg  *Registry
	arts []*Artifacts

	needJoint  bool
	jointBuilt bool
	jointMin   []float64
	jointMax   []float64
	// newRows / updatedRows track the matrix rows touched since the last
	// joint-norm update, per suite. New rows only *extend* the joint
	// bounds; updated rows can shrink them (the old value may have been
	// the extremum), which forces an exact bound rescan.
	newRows     [][]int
	updatedRows []map[int]bool
}

// NewIncrementalRun starts an incremental scoring run over the given
// suite measurements (which may start empty and grow via appends). A nil
// registry means DefaultRegistry.
func NewIncrementalRun(sms []*perf.SuiteMeasurement, opts Options, reg *Registry) (*IncrementalRun, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if len(sms) == 0 {
		return nil, fmt.Errorf("metric: NewIncrementalRun with no suites")
	}
	if reg == nil {
		reg = DefaultRegistry()
	}
	r := &IncrementalRun{
		opts:        opts,
		reg:         reg,
		arts:        make([]*Artifacts, len(sms)),
		needJoint:   reg.needs(func(c Capabilities) bool { return c.NeedsJointNorm }),
		newRows:     make([][]int, len(sms)),
		updatedRows: make([]map[int]bool, len(sms)),
	}
	for i, sm := range sms {
		r.arts[i] = NewArtifacts(sm, opts)
		r.updatedRows[i] = make(map[int]bool)
		for w := range sm.Workloads {
			r.newRows[i] = append(r.newRows[i], w)
		}
	}
	return r, nil
}

// Suites returns the number of suites in the run.
func (r *IncrementalRun) Suites() int { return len(r.arts) }

// Measurement returns suite i's accumulated measurement. The run owns
// it; callers must not mutate it.
func (r *IncrementalRun) Measurement(i int) *perf.SuiteMeasurement { return r.arts[i].Meas }

// WorkloadIndex returns the index of the named workload in suite i, or
// -1 if no workload with that name has been appended.
func (r *IncrementalRun) WorkloadIndex(suite int, name string) int {
	if suite < 0 || suite >= len(r.arts) {
		return -1
	}
	for w := range r.arts[suite].Meas.Workloads {
		if r.arts[suite].Meas.Workloads[w].Workload == name {
			return w
		}
	}
	return -1
}

// AppendWorkload appends a new workload measurement to suite i. The
// run's cached artifacts grow in place; the next Scores call pays only
// the delta cost of the new row.
func (r *IncrementalRun) AppendWorkload(suite int, m perf.Measurement) error {
	if suite < 0 || suite >= len(r.arts) {
		return fmt.Errorf("metric: AppendWorkload: suite index %d out of range [0,%d)", suite, len(r.arts))
	}
	a := r.arts[suite]
	idx := len(a.Meas.Workloads)
	a.appendWorkload(m)
	r.newRows[suite] = append(r.newRows[suite], idx)
	return nil
}

// AppendSamples extends an existing workload of suite i: delta
// accumulates into its counter totals and series (if non-nil and
// non-empty) appends to its sampled time series.
func (r *IncrementalRun) AppendSamples(suite int, workload string, delta perf.Values, series *perf.TimeSeries) error {
	if suite < 0 || suite >= len(r.arts) {
		return fmt.Errorf("metric: AppendSamples: suite index %d out of range [0,%d)", suite, len(r.arts))
	}
	idx := r.WorkloadIndex(suite, workload)
	if idx < 0 {
		return fmt.Errorf("metric: AppendSamples: suite %q has no workload %q",
			r.arts[suite].Meas.Suite, workload)
	}
	a := r.arts[suite]
	a.appendSamples(idx, delta, series)
	if delta != (perf.Values{}) {
		r.updatedRows[suite][idx] = true
	}
	return nil
}

// Scores re-scores the current accumulated state. The result is
// bit-identical to ScoreSuites over the same measurements; only the
// artifacts touched by appends since the last call are recomputed.
func (r *IncrementalRun) Scores(ctx context.Context) ([]Scores, error) {
	runStage := stage.Compare
	if len(r.arts) == 1 {
		runStage = stage.Score
	}
	if r.needJoint {
		_, jnSpan := obs.Start(ctx, "joint_norm")
		err := r.updateJoint()
		jnSpan.End()
		if err != nil {
			return nil, stage.Wrap(runStage, "", "", err)
		}
	}
	for i := range r.arts {
		r.newRows[i] = r.newRows[i][:0]
		for k := range r.updatedRows[i] {
			delete(r.updatedRows[i], k)
		}
	}
	return scoreArtifacts(ctx, r.arts, r.reg, runStage)
}

// updateJoint maintains the Eq. 9–10 joint normalization across the
// run's suites. The first call computes it exactly as the batch path
// does; later calls extend the global bounds with the appended rows and
// re-normalize only moved columns everywhere (plus all columns of the
// appended/updated rows), so an append to one suite costs O(rows·moved
// columns) across the run instead of a full rebuild.
func (r *IncrementalRun) updateJoint() error {
	raws := make([]*mat.Matrix, len(r.arts))
	for i, a := range r.arts {
		raws[i] = a.Raw()
	}
	if !r.jointBuilt {
		mins, maxs, err := jointBounds(raws)
		if err != nil {
			return err
		}
		normed := applyJointNorm(raws, mins, maxs)
		for i, a := range r.arts {
			a.JointNorm = normed[i]
			a.bumpJointVersion()
		}
		r.jointMin, r.jointMax = mins, maxs
		r.jointBuilt = true
		return nil
	}
	anyPending := false
	anyUpdated := false
	for i := range r.arts {
		if len(r.newRows[i]) > 0 {
			anyPending = true
		}
		if len(r.updatedRows[i]) > 0 {
			anyPending = true
			anyUpdated = true
		}
	}
	if !anyPending {
		return nil
	}
	m := len(r.jointMin)
	newMin := make([]float64, m)
	newMax := make([]float64, m)
	if anyUpdated {
		// An updated row can shrink a bound (its old value may have been
		// the extremum); recompute the bounds exactly. The scan is
		// O(total rows · m) over floats already in cache — trivial next
		// to one DTW pair.
		mins, maxs, err := jointBounds(raws)
		if err != nil {
			return err
		}
		copy(newMin, mins)
		copy(newMax, maxs)
	} else {
		copy(newMin, r.jointMin)
		copy(newMax, r.jointMax)
		for i, a := range r.arts {
			x := a.Raw()
			for _, w := range r.newRows[i] {
				row := x.RowView(w)
				for j, v := range row {
					if v < newMin[j] {
						newMin[j] = v
					}
					if v > newMax[j] {
						newMax[j] = v
					}
				}
			}
		}
	}
	moved := make([]bool, m)
	anyMoved := false
	for j := 0; j < m; j++ {
		if newMin[j] != r.jointMin[j] || newMax[j] != r.jointMax[j] {
			moved[j] = true
			anyMoved = true
		}
	}
	// Re-normalize: moved columns everywhere; unmoved columns only for
	// the appended/updated rows of each suite. Suites fan out — each
	// task writes only its own JointNorm.
	par.Do(len(r.arts), func(_, k int) {
		a := r.arts[k]
		x := raws[k]
		touched := touchedRows(r.newRows[k], r.updatedRows[k])
		if a.JointNorm == nil || (!anyMoved && len(touched) == 0) {
			if a.JointNorm == nil {
				a.JointNorm = applyJointNorm([]*mat.Matrix{x}, newMin, newMax)[0]
				a.bumpJointVersion()
			}
			// Otherwise no bound moved and no row of this suite changed:
			// JointNorm is untouched and its version must not move, so
			// metrics keyed on it stay memoized.
			return
		}
		grown := a.JointNorm
		if grown.Rows() != x.Rows() {
			ng := mat.New(x.Rows(), m)
			for i := 0; i < grown.Rows(); i++ {
				ng.SetRow(i, grown.RowView(i))
			}
			grown = ng
		}
		for j := 0; j < m; j++ {
			if !moved[j] && len(touched) == 0 {
				continue
			}
			span := newMax[j] - newMin[j]
			if moved[j] {
				for i := 0; i < x.Rows(); i++ {
					grown.Set(i, j, normJointElem(x.At(i, j), newMin[j], span))
				}
				continue
			}
			for _, i := range touched {
				grown.Set(i, j, normJointElem(x.At(i, j), newMin[j], span))
			}
		}
		a.JointNorm = grown
		a.bumpJointVersion()
	})
	r.jointMin, r.jointMax = newMin, newMax
	return nil
}

// normJointElem is the per-element form of stat.NormalizeWith: scale
// into [0,1] with external bounds, clamped, degenerate span to 0. Kept
// in exact arithmetic lockstep with NormalizeWith so incremental entries
// are bit-identical to a batch JointNormalize.
func normJointElem(x, min, span float64) float64 {
	if span == 0 {
		return 0
	}
	v := (x - min) / span
	if v < 0 {
		v = 0
	} else if v > 1 {
		v = 1
	}
	return v
}

// touchedRows merges the appended and updated row indices of one suite
// in ascending order.
func touchedRows(newRows []int, updated map[int]bool) []int {
	if len(newRows) == 0 && len(updated) == 0 {
		return nil
	}
	seen := make(map[int]bool, len(newRows)+len(updated))
	var out []int
	for _, w := range newRows {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	for w := range updated {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	sort.Ints(out)
	return out
}
