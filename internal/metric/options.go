// Package metric is the staged scoring engine behind Perspector's four
// suite-quality scores. It separates *what* is measured from *how* it is
// scored:
//
//   - Artifacts holds every intermediate a scoring run needs — the
//     counter matrix, the per-suite and joint-normalized matrices, the
//     silhouette distance matrix, and the warmup-trimmed normalized time
//     series — computed once per suite and shared by all metrics.
//   - Metric is the pluggable unit: a name, capability requirements
//     (e.g. needs-series), and a Compute over the shared Artifacts. The
//     four §III paper scores are the stock implementations.
//   - Registry is an ordered metric set; ScoreSuites drives it over one
//     or many suites under the joint normalization of Eq. 9–10, skipping
//     metrics whose capabilities a measurement cannot satisfy (a
//     totals-only import simply comes back with Trend absent).
//
// Every computation funnels through par.DoErr with the caller's context,
// so a cancelled context stops scoring promptly; reductions happen in a
// fixed serial order, so results are bit-identical at any worker count.
package metric

import (
	"fmt"

	"perspector/internal/perf"
)

// Options configures score computation.
type Options struct {
	// Counters is the event group to score over (the "focused scoring"
	// of §IV-B). Defaults to all Table-IV counters.
	Counters []perf.Counter
	// KMeansSeed drives k-means restarts deterministically.
	KMeansSeed uint64
	// KMeansRestarts is the number of k-means++ restarts per k.
	KMeansRestarts int
	// DTWGrid is the number of percentile-grid intervals used by the
	// TrendScore normalization (§III-B1); the series are resampled to
	// DTWGrid+1 points.
	DTWGrid int
	// DTWBand is the Sakoe–Chiba half-width; 0 means full DTW.
	DTWBand int
	// PCAVariance is the retained-variance fraction of Eq. 11–12.
	PCAVariance float64
	// SpreadSeed seeds the uniform draws of Eq. 14.
	SpreadSeed uint64
	// WarmupFrac is the fraction of leading time-series samples dropped
	// before trend analysis. Short simulated runs make cold-start effects
	// (cache/TLB fill, first-touch faults) a visible artificial "phase"
	// that real minutes-long executions do not show; discarding warmup is
	// the standard counter-measurement methodology.
	WarmupFrac float64
	// TrendValueCDF switches the TrendScore's y-axis normalization from
	// the event-CDF-over-time reading of §III-B1 to the alternative
	// value-CDF reading. Kept for the ablation study only: the value-CDF
	// variant rank-amplifies sampling noise on steady workloads and
	// inverts the paper's LMbench/Nbench trend results (see DESIGN.md).
	TrendValueCDF bool
}

// DefaultOptions mirrors the paper's configuration: all counters, 98 %
// retained variance, full DTW on a 100-point percentile grid.
func DefaultOptions() Options {
	return Options{
		Counters:       perf.AllCounters(),
		KMeansSeed:     1,
		KMeansRestarts: 8,
		DTWGrid:        100,
		PCAVariance:    0.98,
		SpreadSeed:     7,
		WarmupFrac:     0.1,
	}
}

// Validate checks the option ranges.
func (o *Options) Validate() error {
	if len(o.Counters) == 0 {
		return fmt.Errorf("metric: no counters selected")
	}
	if o.DTWGrid < 1 {
		return fmt.Errorf("metric: DTWGrid %d < 1", o.DTWGrid)
	}
	if o.PCAVariance <= 0 || o.PCAVariance > 1 {
		return fmt.Errorf("metric: PCAVariance %v out of (0,1]", o.PCAVariance)
	}
	if o.KMeansRestarts < 1 {
		return fmt.Errorf("metric: KMeansRestarts %d < 1", o.KMeansRestarts)
	}
	if o.WarmupFrac < 0 || o.WarmupFrac > 0.9 {
		return fmt.Errorf("metric: WarmupFrac %v out of [0, 0.9]", o.WarmupFrac)
	}
	return nil
}

// Scores holds the four Perspector metrics for one suite.
// Lower is better for Cluster and Spread; higher is better for Trend and
// Coverage (§IV-A). The struct is comparable on purpose: equivalence
// tests pin engine results bit-for-bit with ==.
type Scores struct {
	Suite    string
	Cluster  float64
	Trend    float64
	Coverage float64
	Spread   float64
}

// set stores a metric's value into its named slot. The Scores struct is
// the paper-shaped result; a registry metric whose name has no slot here
// is a configuration error, reported rather than silently dropped.
func (s *Scores) set(name string, v float64) error {
	switch name {
	case MetricCluster:
		s.Cluster = v
	case MetricTrend:
		s.Trend = v
	case MetricCoverage:
		s.Coverage = v
	case MetricSpread:
		s.Spread = v
	default:
		return fmt.Errorf("metric: %q has no slot in Scores", name)
	}
	return nil
}
