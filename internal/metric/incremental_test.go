package metric

// Incremental-scoring oracle tests: every append step of an
// IncrementalRun must produce scores bit-identical to a fresh batch
// ScoreSuites over the accumulated measurement — the batch path is the
// exact-recompute golden oracle. Comparisons are exact (float64 ==);
// failures print hex floats so a one-ulp drift is visible.

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"testing"

	"perspector/internal/par"
	"perspector/internal/perf"
	"perspector/internal/suites"
)

// cloneSuite deep-copies a suite measurement so the batch oracle scores
// its own data, free of any aliasing with the incremental run's state.
func cloneSuite(sm *perf.SuiteMeasurement) *perf.SuiteMeasurement {
	out := &perf.SuiteMeasurement{
		Suite:     sm.Suite,
		Workloads: make([]perf.Measurement, len(sm.Workloads)),
	}
	for i := range sm.Workloads {
		w := &sm.Workloads[i]
		cw := perf.Measurement{Workload: w.Workload, Totals: w.Totals}
		cw.Series.Interval = w.Series.Interval
		for c := range w.Series.Samples {
			if len(w.Series.Samples[c]) > 0 {
				cw.Series.Samples[c] = append([]float64(nil), w.Series.Samples[c]...)
			}
		}
		out.Workloads[i] = cw
	}
	return out
}

func hexFloat(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

// verifyAgainstOracle scores the run incrementally and batch-rescores a
// deep copy of the same accumulated data; both must agree bit-for-bit
// (or fail with the same error).
func verifyAgainstOracle(t *testing.T, ctx context.Context, run *IncrementalRun, step string) {
	t.Helper()
	got, gerr := run.Scores(ctx)
	sms := make([]*perf.SuiteMeasurement, run.Suites())
	for i := range sms {
		sms[i] = cloneSuite(run.Measurement(i))
	}
	want, werr := ScoreSuites(ctx, sms, run.opts, run.reg)
	if (gerr != nil) != (werr != nil) {
		t.Fatalf("%s: incremental err %v vs batch err %v", step, gerr, werr)
	}
	if gerr != nil {
		if gerr.Error() != werr.Error() {
			t.Fatalf("%s: error mismatch\nincremental: %v\nbatch:       %v", step, gerr, werr)
		}
		return
	}
	if len(got) != len(want) {
		t.Fatalf("%s: %d suites incremental vs %d batch", step, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: suite %q diverged\nincremental: C=%s T=%s V=%s S=%s\nbatch:       C=%s T=%s V=%s S=%s",
				step, want[i].Suite,
				hexFloat(got[i].Cluster), hexFloat(got[i].Trend), hexFloat(got[i].Coverage), hexFloat(got[i].Spread),
				hexFloat(want[i].Cluster), hexFloat(want[i].Trend), hexFloat(want[i].Coverage), hexFloat(want[i].Spread))
		}
	}
}

// splitMeasurement cuts one workload measurement into a first chunk (half
// the series samples, half the totals) and the remainder (totals delta
// plus the series tail); applying both reassembles the original exactly
// (uint64 halves sum back, series concatenate back).
func splitMeasurement(m *perf.Measurement) (first perf.Measurement, delta perf.Values, tail *perf.TimeSeries) {
	first = perf.Measurement{Workload: m.Workload}
	half := m.Series.Len() / 2
	first.Series.Interval = m.Series.Interval
	tail = &perf.TimeSeries{Interval: m.Series.Interval}
	for c := range m.Series.Samples {
		s := m.Series.Samples[c]
		h := half
		if h > len(s) {
			h = len(s)
		}
		first.Series.Samples[c] = append([]float64(nil), s[:h]...)
		tail.Samples[c] = append([]float64(nil), s[h:]...)
	}
	for c := range m.Totals {
		h := m.Totals[c] / 2
		first.Totals[c] = h
		delta[c] = m.Totals[c] - h
	}
	return first, delta, tail
}

// stockMeasurements measures the named stock suites at a reduced config,
// capping each at maxWorkloads to keep the per-step batch oracle cheap.
func stockMeasurements(t *testing.T, names []string, maxWorkloads int) []*perf.SuiteMeasurement {
	t.Helper()
	cfg := suites.DefaultConfig()
	cfg.Instructions = 20_000
	cfg.Samples = 12
	out := make([]*perf.SuiteMeasurement, len(names))
	for i, name := range names {
		s, err := suites.ByName(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sm, err := suites.RunContext(context.Background(), s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(sm.Workloads) > maxWorkloads {
			sm.Workloads = sm.Workloads[:maxWorkloads]
		}
		out[i] = sm
	}
	return out
}

func incrementalTestOptions() Options {
	opts := DefaultOptions()
	opts.DTWGrid = 24
	opts.KMeansRestarts = 2
	return opts
}

// TestIncrementalCompareGoldenStockSuites drives a six-suite compare run
// append-by-append: workloads are added round-robin across the stock
// suites (odd-indexed ones in two chunks, exercising the
// totals-update/series-append path), and after *every* append step the
// incremental scores must be bit-identical to a batch rescore of the
// accumulated data — including the incremental joint-norm propagation
// across all six suites.
func TestIncrementalCompareGoldenStockSuites(t *testing.T) {
	if testing.Short() {
		t.Skip("measures all six stock suites")
	}
	ctx := context.Background()
	full := stockMeasurements(t, suites.StockNames(), 8)
	opts := incrementalTestOptions()

	empty := make([]*perf.SuiteMeasurement, len(full))
	for i, sm := range full {
		empty[i] = &perf.SuiteMeasurement{Suite: sm.Suite}
	}
	run, err := NewIncrementalRun(empty, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Seed every suite with its first workload (a compare run over an
	// empty suite has no joint bounds — same error either path).
	for i, sm := range full {
		if err := run.AppendWorkload(i, *cloneWorkload(&sm.Workloads[0])); err != nil {
			t.Fatal(err)
		}
	}
	verifyAgainstOracle(t, ctx, run, "seed")

	maxN := 0
	for _, sm := range full {
		if len(sm.Workloads) > maxN {
			maxN = len(sm.Workloads)
		}
	}
	for w := 1; w < maxN; w++ {
		for i, sm := range full {
			if w >= len(sm.Workloads) {
				continue
			}
			m := &sm.Workloads[w]
			step := sm.Suite + "/" + m.Workload
			if w%2 == 0 || m.Series.Len() < 2 {
				if err := run.AppendWorkload(i, *cloneWorkload(m)); err != nil {
					t.Fatal(err)
				}
				verifyAgainstOracle(t, ctx, run, step)
				continue
			}
			firstChunk, delta, tail := splitMeasurement(m)
			if err := run.AppendWorkload(i, firstChunk); err != nil {
				t.Fatal(err)
			}
			verifyAgainstOracle(t, ctx, run, step+" (half)")
			if err := run.AppendSamples(i, m.Workload, delta, tail); err != nil {
				t.Fatal(err)
			}
			verifyAgainstOracle(t, ctx, run, step+" (rest)")
		}
	}
}

// TestIncrementalSingleSuiteGolden runs the single-suite (stage.Score)
// path over full nbench, verifying every append step.
func TestIncrementalSingleSuiteGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("measures a stock suite")
	}
	ctx := context.Background()
	full := stockMeasurements(t, []string{"nbench"}, 1<<30)[0]
	opts := incrementalTestOptions()

	run, err := NewIncrementalRun([]*perf.SuiteMeasurement{{Suite: full.Suite}}, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	for w := range full.Workloads {
		m := &full.Workloads[w]
		if w%2 == 0 || m.Series.Len() < 2 {
			if err := run.AppendWorkload(0, *cloneWorkload(m)); err != nil {
				t.Fatal(err)
			}
			verifyAgainstOracle(t, ctx, run, m.Workload)
			continue
		}
		firstChunk, delta, tail := splitMeasurement(m)
		if err := run.AppendWorkload(0, firstChunk); err != nil {
			t.Fatal(err)
		}
		verifyAgainstOracle(t, ctx, run, m.Workload+" (half)")
		if err := run.AppendSamples(0, m.Workload, delta, tail); err != nil {
			t.Fatal(err)
		}
		verifyAgainstOracle(t, ctx, run, m.Workload+" (rest)")
	}
}

func cloneWorkload(m *perf.Measurement) *perf.Measurement {
	cw := perf.Measurement{Workload: m.Workload, Totals: m.Totals}
	cw.Series.Interval = m.Series.Interval
	for c := range m.Series.Samples {
		if len(m.Series.Samples[c]) > 0 {
			cw.Series.Samples[c] = append([]float64(nil), m.Series.Samples[c]...)
		}
	}
	return &cw
}

// TestIncrementalRandomAppendsMatchOracle is the property test: a seeded
// random sequence of appends — new workloads, totals-only deltas, series
// chunks, values drawn from a tiny integer range so normalization bounds
// move, tie, and degenerate (span 0) often — must match the batch oracle
// bit-for-bit after every operation. Suite 0 carries series (trend
// exercised); suite 1 is totals-only (trend skipped via capability).
func TestIncrementalRandomAppendsMatchOracle(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run("workers="+strconv.Itoa(workers), func(t *testing.T) {
			defer par.SetWorkers(par.SetWorkers(workers))
			ctx := context.Background()
			rnd := rand.New(rand.NewSource(7))
			opts := DefaultOptions()
			opts.DTWGrid = 8
			opts.KMeansRestarts = 1

			run, err := NewIncrementalRun([]*perf.SuiteMeasurement{
				{Suite: "streamy"}, {Suite: "totals-only"},
			}, opts, nil)
			if err != nil {
				t.Fatal(err)
			}
			randTotals := func() perf.Values {
				var v perf.Values
				for c := range v {
					v[c] = uint64(rnd.Intn(5))
				}
				return v
			}
			randSeries := func(minLen int) *perf.TimeSeries {
				ts := &perf.TimeSeries{Interval: 100}
				n := minLen + rnd.Intn(6)
				for c := range ts.Samples {
					s := make([]float64, n)
					for i := range s {
						s[i] = float64(rnd.Intn(4))
					}
					ts.Samples[c] = s
				}
				return ts
			}
			newWorkload := func(suite, id int) {
				m := perf.Measurement{
					Workload: "w" + strconv.Itoa(suite) + "-" + strconv.Itoa(id),
					Totals:   randTotals(),
				}
				if suite == 0 {
					m.Series = *randSeries(2)
				}
				if err := run.AppendWorkload(suite, m); err != nil {
					t.Fatal(err)
				}
			}
			newWorkload(0, 0)
			newWorkload(1, 0)
			verifyAgainstOracle(t, ctx, run, "seed")

			nextID := []int{1, 1}
			for step := 0; step < 60; step++ {
				suite := rnd.Intn(2)
				label := "step " + strconv.Itoa(step)
				switch op := rnd.Intn(3); {
				case op == 0 || nextID[suite] < 2:
					newWorkload(suite, nextID[suite])
					nextID[suite]++
				default:
					// Extend a random existing workload: maybe a totals
					// delta, maybe a series chunk (suite 0 only), maybe both,
					// sometimes neither (a no-op chunk must also hold).
					idx := rnd.Intn(nextID[suite])
					name := "w" + strconv.Itoa(suite) + "-" + strconv.Itoa(idx)
					var delta perf.Values
					if rnd.Intn(2) == 0 {
						delta = randTotals()
					}
					var chunk *perf.TimeSeries
					if suite == 0 && rnd.Intn(2) == 0 {
						chunk = randSeries(0)
					}
					if err := run.AppendSamples(suite, name, delta, chunk); err != nil {
						t.Fatal(err)
					}
				}
				verifyAgainstOracle(t, ctx, run, label)
			}
		})
	}
}

// TestArtifactsScratchGrowsWithWorkers is the regression test for the
// construction-time scratch sizing bug: NewArtifacts used to capture
// par.Workers() once, so raising the pool width afterwards made wider
// worker ids fall back to throwaway distancers forever. The table must
// now grow to the live worker count at each parallel entry point.
func TestArtifactsScratchGrowsWithWorkers(t *testing.T) {
	defer par.SetWorkers(par.SetWorkers(1))
	sm := testMeasurement(t)
	opts := DefaultOptions()
	a := NewArtifacts(sm, opts)
	ctx := context.Background()
	if _, err := a.TrendDists(ctx, perf.CPUCycles); err != nil {
		t.Fatal(err)
	}
	if len(a.scratch) != 1 {
		t.Fatalf("scratch sized %d under 1 worker, want 1", len(a.scratch))
	}
	want, err := trendMetric{}.Compute(ctx, NewArtifacts(cloneSuite(sm), opts))
	if err != nil {
		t.Fatal(err)
	}

	par.SetWorkers(4)
	// A fresh counter forces NormSeries/TrendDists through the parallel
	// region again; the scratch table must widen to the new pool.
	if _, err := a.TrendDists(ctx, perf.LLCLoads); err != nil {
		t.Fatal(err)
	}
	if len(a.scratch) < 4 {
		t.Fatalf("scratch sized %d after SetWorkers(4), want >= 4", len(a.scratch))
	}
	got, err := trendMetric{}.Compute(ctx, a)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("trend diverged across worker widths: %s vs %s", hexFloat(got), hexFloat(want))
	}
}

// TestIncrementalGrowFromEmpty starts a compare run over two suites with
// zero workloads — the shape a streaming client produces: the first
// rescore fails (joint normalization over empty matrices) exactly as the
// batch path fails, and the run must stay usable: appends that arrive
// after the failed rescore (which cached 0×0 raw matrices) grow the
// artifacts and converge to the batch result bit for bit.
func TestIncrementalGrowFromEmpty(t *testing.T) {
	ctx := context.Background()
	opts := incrementalTestOptions()
	sms := []*perf.SuiteMeasurement{{Suite: "left"}, {Suite: "right"}}
	run, err := NewIncrementalRun(sms, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Both suites empty: incremental and batch must fail identically.
	verifyAgainstOracle(t, ctx, run, "both empty")

	rnd := rand.New(rand.NewSource(11))
	newMeas := func(name string) perf.Measurement {
		m := perf.Measurement{Workload: name}
		m.Series.Interval = 100
		for c := 0; c < int(perf.NumCounters); c++ {
			m.Totals[perf.Counter(c)] = uint64(rnd.Intn(4000))
			for s := 0; s < 4; s++ {
				m.Series.Samples[perf.Counter(c)] = append(m.Series.Samples[perf.Counter(c)],
					float64(rnd.Intn(150)))
			}
		}
		return m
	}
	// One suite populated, the other still empty: still the batch error.
	for i := 0; i < 3; i++ {
		if err := run.AppendWorkload(0, newMeas(fmt.Sprintf("l%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	verifyAgainstOracle(t, ctx, run, "right empty")
	// Fill the second suite after the failed rescore: the cached empty
	// matrices must not poison the growth path.
	for i := 0; i < 3; i++ {
		if err := run.AppendWorkload(1, newMeas(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
		verifyAgainstOracle(t, ctx, run, fmt.Sprintf("after r%d", i))
	}
}
