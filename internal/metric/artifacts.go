package metric

import (
	"context"
	"fmt"

	"perspector/internal/cluster"
	"perspector/internal/dtw"
	"perspector/internal/mat"
	"perspector/internal/par"
	"perspector/internal/perf"
	"perspector/internal/stat"
)

// Artifacts holds the shared intermediates of one suite's scoring run.
// Before the engine existed, every score recomputed its inputs from the
// raw measurement (the counter matrix twice, the normalized matrix per
// score); Artifacts computes each intermediate once, on first request,
// and hands the cached value to every metric that follows.
//
// An Artifacts value is not safe for concurrent use: the engine runs the
// registry's metrics serially per suite (suites fan out, metrics do not),
// so the lazy single-slot caches need no locks.
type Artifacts struct {
	// Meas is the suite measurement being scored.
	Meas *perf.SuiteMeasurement
	// Opts is the scoring configuration; it must not change between
	// metric computations (cached intermediates depend on it).
	Opts Options
	// JointNorm is the counter matrix under the joint normalization of
	// Eq. 9–10 across every suite of the scoring run. The engine sets it
	// after JointNormalize; metrics that declare NeedsJointNorm may read
	// it directly. For a suite scored alone it degenerates to the suite's
	// own bounds.
	JointNorm *mat.Matrix

	raw        *mat.Matrix
	ownNorm    *mat.Matrix
	dist       [][]float64
	normSeries map[perf.Counter][][]float64
	scratch    []*dtw.Distancer
}

// NewArtifacts wraps a measurement for scoring. Intermediates are
// computed lazily; nothing runs until a metric asks.
func NewArtifacts(sm *perf.SuiteMeasurement, opts Options) *Artifacts {
	return &Artifacts{
		Meas:    sm,
		Opts:    opts,
		scratch: make([]*dtw.Distancer, par.Workers()),
	}
}

// HasSeries reports whether any workload carries sampled time-series
// data. Totals-only imports (e.g. a counters CSV) have none; metrics
// that declare NeedsSeries are skipped for such measurements.
func (a *Artifacts) HasSeries() bool {
	for i := range a.Meas.Workloads {
		if a.Meas.Workloads[i].Series.Len() > 0 {
			return true
		}
	}
	return false
}

// Raw returns the n×m counter matrix restricted to Opts.Counters.
func (a *Artifacts) Raw() *mat.Matrix {
	if a.raw == nil {
		a.raw = matrixFor(a.Meas, a.Opts.Counters)
	}
	return a.raw
}

// OwnNorm returns the counter matrix min-max normalized with the suite's
// own per-counter bounds — the intrinsic-score normalization used by
// ClusterScore (§III-A), as opposed to the cross-suite JointNorm.
func (a *Artifacts) OwnNorm() *mat.Matrix {
	if a.ownNorm == nil {
		a.ownNorm = normalizeColumns(a.Raw())
	}
	return a.ownNorm
}

// Dist returns the pairwise Euclidean distance matrix over OwnNorm; one
// O(n²) computation serves every silhouette of the k-means sweep.
func (a *Artifacts) Dist() [][]float64 {
	if a.dist == nil {
		a.dist = cluster.DistanceMatrix(a.OwnNorm())
	}
	return a.dist
}

// NormSeries returns the warmup-trimmed, CDF/percentile-normalized delta
// series of every workload for counter c (the Fig. 1 normalization that
// TrendScore's DTW compares). The result is cached per counter.
func (a *Artifacts) NormSeries(ctx context.Context, c perf.Counter) ([][]float64, error) {
	if s, ok := a.normSeries[c]; ok {
		return s, nil
	}
	series := a.Meas.SeriesFor(c)
	n := len(a.Meas.Workloads)
	norm := make([][]float64, n)
	err := par.DoErr(ctx, n, func(w, i int) error {
		s := series[i]
		if len(s) == 0 {
			return fmt.Errorf("metric: TrendScore: workload %q has no samples for %v",
				a.Meas.Workloads[i].Workload, c)
		}
		drop := int(a.Opts.WarmupFrac * float64(len(s)))
		if drop >= len(s) {
			drop = len(s) - 1
		}
		if a.Opts.TrendValueCDF {
			norm[i] = dtw.NormalizeSeriesValueCDF(s[drop:], a.Opts.DTWGrid)
		} else {
			// NormalizeSeries returns a fresh slice, so caching the result
			// while reusing the distancer's internal scratch is safe.
			norm[i] = a.distancer(w).NormalizeSeries(s[drop:], a.Opts.DTWGrid)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if a.normSeries == nil {
		a.normSeries = make(map[perf.Counter][][]float64)
	}
	a.normSeries[c] = norm
	return norm, nil
}

// distancer returns worker w's reusable DTW scratch. Worker ids from
// par.Do/DoErr are stable within a pool, so each slot is owned by one
// goroutine at a time.
func (a *Artifacts) distancer(w int) *dtw.Distancer {
	if w >= len(a.scratch) {
		// Pool width grew after NewArtifacts (SetWorkers mid-run); fall
		// back to a throwaway instance rather than racing on the slice.
		return dtw.NewDistancer()
	}
	if a.scratch[w] == nil {
		a.scratch[w] = dtw.NewDistancer()
	}
	return a.scratch[w]
}

// normalizeColumns min-max normalizes each column of x into [0,1] using
// the column's own bounds (used when a suite is scored in isolation).
func normalizeColumns(x *mat.Matrix) *mat.Matrix {
	out := mat.New(x.Rows(), x.Cols())
	for j := 0; j < x.Cols(); j++ {
		col := stat.Normalize(x.Col(j))
		for i, v := range col {
			out.Set(i, j, v)
		}
	}
	return out
}

// matrixFor extracts the n×m counter matrix of a suite restricted to the
// selected counters.
func matrixFor(sm *perf.SuiteMeasurement, counters []perf.Counter) *mat.Matrix {
	return mat.FromRows(sm.Matrix(counters))
}

// JointNormalize min-max normalizes the matrices of several suites with
// shared per-counter bounds (Eq. 9–10): the bounds come from the
// concatenation of all suites, so relative ranges between suites survive.
func JointNormalize(xs []*mat.Matrix) ([]*mat.Matrix, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("metric: JointNormalize with no matrices")
	}
	m := xs[0].Cols()
	for _, x := range xs {
		if x.Cols() != m {
			return nil, fmt.Errorf("metric: JointNormalize column mismatch %d vs %d", x.Cols(), m)
		}
		if x.Rows() == 0 {
			return nil, fmt.Errorf("metric: JointNormalize with empty matrix")
		}
	}
	// Global bounds per counter (Eq. 9). Columns are independent, so the
	// bound scan fans out per column; each task writes only its own
	// mins[j]/maxs[j] slot.
	mins := make([]float64, m)
	maxs := make([]float64, m)
	par.Do(m, func(_, j int) {
		first := true
		for _, x := range xs {
			for i := 0; i < x.Rows(); i++ {
				v := x.At(i, j)
				if first || v < mins[j] {
					mins[j] = v
				}
				if first || v > maxs[j] {
					maxs[j] = v
				}
				first = false
			}
		}
	})
	// Normalization pass: one task per suite, each writing its own out[k].
	out := make([]*mat.Matrix, len(xs))
	par.Do(len(xs), func(_, k int) {
		x := xs[k]
		nx := mat.New(x.Rows(), m)
		for j := 0; j < m; j++ {
			col := stat.NormalizeWith(x.Col(j), mins[j], maxs[j])
			for i, v := range col {
				nx.Set(i, j, v)
			}
		}
		out[k] = nx
	})
	return out, nil
}

// TotalsOnly returns a shallow copy of sm with every time series dropped,
// keeping workload names and counter totals. Scoring the copy makes the
// trend metric's NeedsSeries capability check skip itself — the engine
// path that replaced the old hand-rolled ScoreSuiteNoTrend.
func TotalsOnly(sm *perf.SuiteMeasurement) *perf.SuiteMeasurement {
	out := &perf.SuiteMeasurement{
		Suite:     sm.Suite,
		Workloads: make([]perf.Measurement, len(sm.Workloads)),
	}
	for i, w := range sm.Workloads {
		out.Workloads[i] = perf.Measurement{Workload: w.Workload, Totals: w.Totals}
	}
	return out
}
