package metric

import (
	"context"
	"fmt"

	"perspector/internal/cluster"
	"perspector/internal/dtw"
	"perspector/internal/mat"
	"perspector/internal/par"
	"perspector/internal/perf"
	"perspector/internal/stat"
)

// staleVer marks a cache slot that has never been computed. Workload
// series versions start at 0 and only increment, so the sentinel can
// never collide with a real version.
const staleVer = ^uint64(0)

// Artifacts holds the shared intermediates of one suite's scoring run.
// Before the engine existed, every score recomputed its inputs from the
// raw measurement (the counter matrix twice, the normalized matrix per
// score); Artifacts computes each intermediate once, on first request,
// and hands the cached value to every metric that follows.
//
// Artifacts also supports *append*: IncrementalRun grows a measurement
// workload-by-workload (or chunk-by-chunk within a workload) and the
// cached intermediates grow with it instead of being rebuilt —
// normalization bounds extend online, the distance matrix gains one
// row/column, and the pairwise-DTW cache recomputes only pairs touching
// a changed series. Whenever a cheap update cannot be proven
// bit-identical to a fresh batch computation (a normalization bound
// moved), the affected cache is dropped wholesale and the next access
// recomputes it with the exact batch code path.
//
// An Artifacts value is not safe for concurrent use: the engine runs the
// registry's metrics serially per suite (suites fan out, metrics do not),
// so the lazy single-slot caches need no locks. Mutation (appendWorkload,
// appendSamples) must likewise be serialized with scoring.
type Artifacts struct {
	// Meas is the suite measurement being scored.
	Meas *perf.SuiteMeasurement
	// Opts is the scoring configuration; it must not change between
	// metric computations (cached intermediates depend on it).
	Opts Options
	// JointNorm is the counter matrix under the joint normalization of
	// Eq. 9–10 across every suite of the scoring run. The engine sets it
	// after JointNormalize; metrics that declare NeedsJointNorm may read
	// it directly. For a suite scored alone it degenerates to the suite's
	// own bounds.
	JointNorm *mat.Matrix

	raw     *mat.Matrix
	ownNorm *mat.Matrix
	// colMin/colMax are the per-column bounds backing ownNorm; valid iff
	// ownNorm != nil. Appends consult them to decide between extending
	// the normalized matrix (bounds unmoved: every cached entry is
	// already what a batch recompute would produce) and dropping it.
	colMin, colMax []float64
	dist           [][]float64

	// seriesVer[i] counts sample appends to workload i's series; the
	// per-counter caches below record the version they were computed at
	// and recompute only slots whose version moved. Indices beyond
	// len(seriesVer) are version 0 (never mutated).
	seriesVer  []uint64
	normSeries map[perf.Counter]*seriesCache
	trendDists map[perf.Counter]*pairCache

	// Input-version counters backing the per-metric memo: totalsVer
	// counts changes to the counter matrix (appended rows, totals
	// deltas), seriesEpoch counts any series change anywhere in the
	// suite, and jointVer counts changes to JointNorm's *content*
	// (bumped by IncrementalRun.updateJoint). A metric's result is
	// reusable iff the versions its declared capabilities map to are all
	// unchanged — see scoreArtifacts.
	totalsVer   uint64
	seriesEpoch uint64
	jointVer    uint64
	memo        map[string]memoEntry

	scratch []*dtw.Distancer
}

// memoKey is the input signature a memoized metric value was computed
// at. rows and totalsVer always participate; seriesEpoch and jointVer
// only when the metric declares the corresponding capability (the zero
// value stands in otherwise), so e.g. a sample-only append leaves the
// cluster/coverage/spread signatures untouched.
type memoKey struct {
	rows        int
	totalsVer   uint64
	seriesEpoch uint64
	jointVer    uint64
}

// memoEntry is one memoized metric value.
type memoEntry struct {
	key   memoKey
	value float64
}

// memoKeyFor builds the metric's input signature from its capabilities.
func (a *Artifacts) memoKeyFor(c Capabilities) memoKey {
	k := memoKey{rows: len(a.Meas.Workloads), totalsVer: a.totalsVer}
	if c.NeedsSeries {
		k.seriesEpoch = a.seriesEpoch
	}
	if c.NeedsJointNorm {
		k.jointVer = a.jointVer
	}
	return k
}

// memoLookup returns the memoized value for the named metric if its
// input signature still matches.
func (a *Artifacts) memoLookup(name string, key memoKey) (float64, bool) {
	e, ok := a.memo[name]
	if !ok || e.key != key {
		return 0, false
	}
	return e.value, true
}

// memoStore records a computed metric value under its input signature.
func (a *Artifacts) memoStore(name string, key memoKey, v float64) {
	if a.memo == nil {
		a.memo = make(map[string]memoEntry)
	}
	a.memo[name] = memoEntry{key: key, value: v}
}

// bumpJointVersion marks JointNorm's content as changed; the engine
// calls it whenever it rewrites any entry of the matrix.
func (a *Artifacts) bumpJointVersion() { a.jointVer++ }

// seriesCache is the per-counter normalized-series cache: norm[i] is
// workload i's warmup-trimmed, CDF/percentile-normalized series, ver[i]
// the series version it was computed at.
type seriesCache struct {
	norm [][]float64
	ver  []uint64
}

// pairCache is the per-counter pairwise-DTW cache: d is the symmetric
// n×n distance matrix over the normalized series, ver[i] the series
// version d's row/column i was computed at.
type pairCache struct {
	d   [][]float64
	ver []uint64
}

// NewArtifacts wraps a measurement for scoring. Intermediates are
// computed lazily; nothing runs until a metric asks.
func NewArtifacts(sm *perf.SuiteMeasurement, opts Options) *Artifacts {
	return &Artifacts{Meas: sm, Opts: opts}
}

// HasSeries reports whether any workload carries sampled time-series
// data. Totals-only imports (e.g. a counters CSV) have none; metrics
// that declare NeedsSeries are skipped for such measurements.
func (a *Artifacts) HasSeries() bool {
	for i := range a.Meas.Workloads {
		if a.Meas.Workloads[i].Series.Len() > 0 {
			return true
		}
	}
	return false
}

// Raw returns the n×m counter matrix restricted to Opts.Counters.
func (a *Artifacts) Raw() *mat.Matrix {
	if a.raw == nil {
		a.raw = matrixFor(a.Meas, a.Opts.Counters)
	}
	return a.raw
}

// OwnNorm returns the counter matrix min-max normalized with the suite's
// own per-counter bounds — the intrinsic-score normalization used by
// ClusterScore (§III-A), as opposed to the cross-suite JointNorm.
func (a *Artifacts) OwnNorm() *mat.Matrix {
	if a.ownNorm == nil {
		x := a.Raw()
		a.ownNorm = normalizeColumns(x)
		// Record the bounds the normalization used so appends can tell
		// whether a new row moves them.
		m := x.Cols()
		a.colMin = make([]float64, m)
		a.colMax = make([]float64, m)
		for j := 0; j < m; j++ {
			if x.Rows() == 0 {
				a.colMin[j], a.colMax[j] = 0, 0
				continue
			}
			a.colMin[j], a.colMax[j] = stat.MinMax(x.Col(j))
		}
	}
	return a.ownNorm
}

// Dist returns the pairwise Euclidean distance matrix over OwnNorm; one
// O(n²) computation serves every silhouette of the k-means sweep.
func (a *Artifacts) Dist() [][]float64 {
	if a.dist == nil {
		a.dist = cluster.DistanceMatrix(a.OwnNorm())
	}
	return a.dist
}

// seriesVersion returns workload i's series version (0 if never mutated).
func (a *Artifacts) seriesVersion(i int) uint64 {
	if i < len(a.seriesVer) {
		return a.seriesVer[i]
	}
	return 0
}

// bumpSeriesVersion marks workload i's series as changed.
func (a *Artifacts) bumpSeriesVersion(i int) {
	for len(a.seriesVer) <= i {
		a.seriesVer = append(a.seriesVer, 0)
	}
	a.seriesVer[i]++
	a.seriesEpoch++
}

// NormSeries returns the warmup-trimmed, CDF/percentile-normalized delta
// series of every workload for counter c (the Fig. 1 normalization that
// TrendScore's DTW compares). The result is cached per counter; only
// workloads whose series changed since the last call are recomputed.
func (a *Artifacts) NormSeries(ctx context.Context, c perf.Counter) ([][]float64, error) {
	n := len(a.Meas.Workloads)
	if a.normSeries == nil {
		a.normSeries = make(map[perf.Counter]*seriesCache)
	}
	sc := a.normSeries[c]
	if sc == nil {
		sc = &seriesCache{}
		a.normSeries[c] = sc
	}
	for len(sc.ver) < n {
		sc.ver = append(sc.ver, staleVer)
		sc.norm = append(sc.norm, nil)
	}
	var stale []int
	for i := 0; i < n; i++ {
		if sc.ver[i] != a.seriesVersion(i) {
			stale = append(stale, i)
		}
	}
	if len(stale) == 0 {
		return sc.norm, nil
	}
	series := a.Meas.SeriesFor(c)
	a.ensureScratch(par.Workers())
	err := par.DoErr(ctx, len(stale), func(w, k int) error {
		i := stale[k]
		s := series[i]
		if len(s) == 0 {
			return fmt.Errorf("metric: TrendScore: workload %q has no samples for %v",
				a.Meas.Workloads[i].Workload, c)
		}
		drop := int(a.Opts.WarmupFrac * float64(len(s)))
		if drop >= len(s) {
			drop = len(s) - 1
		}
		if a.Opts.TrendValueCDF {
			sc.norm[i] = dtw.NormalizeSeriesValueCDF(s[drop:], a.Opts.DTWGrid)
		} else {
			// NormalizeSeries returns a fresh slice, so caching the result
			// while reusing the distancer's internal scratch is safe.
			sc.norm[i] = a.distancer(w).NormalizeSeries(s[drop:], a.Opts.DTWGrid)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, i := range stale {
		sc.ver[i] = a.seriesVersion(i)
	}
	return sc.norm, nil
}

// TrendDists returns the symmetric pairwise DTW distance matrix over the
// normalized series of counter c. The matrix is cached per counter and
// grown incrementally: only pairs involving a workload whose series
// changed (or that is new) since the last call are recomputed — the
// windowed update that turns an append from O(n²) DTW into O(n).
func (a *Artifacts) TrendDists(ctx context.Context, c perf.Counter) ([][]float64, error) {
	norm, err := a.NormSeries(ctx, c)
	if err != nil {
		return nil, err
	}
	n := len(norm)
	if a.trendDists == nil {
		a.trendDists = make(map[perf.Counter]*pairCache)
	}
	pc := a.trendDists[c]
	if pc == nil {
		pc = &pairCache{}
		a.trendDists[c] = pc
	}
	for len(pc.ver) < n {
		pc.ver = append(pc.ver, staleVer)
	}
	stale := make([]bool, n)
	anyStale := false
	for i := 0; i < n; i++ {
		if pc.ver[i] != a.seriesVersion(i) {
			stale[i] = true
			anyStale = true
		}
	}
	if !anyStale && len(pc.d) == n {
		return pc.d, nil
	}
	if len(pc.d) != n {
		nd := make([][]float64, n)
		for i := range nd {
			nd[i] = make([]float64, n)
			if i < len(pc.d) {
				copy(nd[i], pc.d[i])
			}
		}
		pc.d = nd
	}
	// Enumerate the affected unordered pairs in the lexicographic order
	// of the serial double loop, exactly as the batch path did.
	var pairs [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if stale[i] || stale[j] {
				pairs = append(pairs, [2]int{i, j})
			}
		}
	}
	a.ensureScratch(par.Workers())
	err = par.DoErr(ctx, len(pairs), func(w, p int) error {
		i, j := pairs[p][0], pairs[p][1]
		// Per-worker reusable DP scratch: the O(W²) DTW loop allocates
		// nothing per pair.
		dz := a.distancer(w)
		var d float64
		if a.Opts.DTWBand > 0 {
			var derr error
			d, derr = dz.DistanceBanded(norm[i], norm[j], a.Opts.DTWBand)
			if derr != nil {
				return fmt.Errorf("metric: TrendScore DTW: %w", derr)
			}
		} else {
			d = dz.Distance(norm[i], norm[j])
		}
		pc.d[i][j] = d
		pc.d[j][i] = d
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		pc.ver[i] = a.seriesVersion(i)
	}
	return pc.d, nil
}

// appendWorkload appends one workload measurement and grows the cached
// intermediates. If the new row moves any own-normalization bound the
// normalized matrix and distance matrix are dropped (the batch path
// rebuilds them bit-identically on next access); otherwise both grow by
// one row/column, the distance column computed in parallel over the
// existing rows.
func (a *Artifacts) appendWorkload(m perf.Measurement) {
	idx := len(a.Meas.Workloads)
	a.Meas.Workloads = append(a.Meas.Workloads, m)
	// A new row changes both the counter matrix and the series set.
	a.totalsVer++
	a.seriesEpoch++
	for len(a.seriesVer) < len(a.Meas.Workloads) {
		a.seriesVer = append(a.seriesVer, 0)
	}
	row := m.Totals.Vector(a.Opts.Counters)
	if a.raw != nil {
		if a.raw.Rows() == 0 {
			// A raw matrix cached while the measurement was still empty is
			// 0×0 and cannot grow a row; drop it and rebuild lazily.
			a.raw = nil
		} else {
			a.raw = appendRowMatrix(a.raw, row)
		}
	}
	if a.ownNorm == nil {
		return
	}
	moved := false
	for j, v := range row {
		if v < a.colMin[j] || v > a.colMax[j] {
			moved = true
			break
		}
	}
	if a.Raw().Rows() == 1 {
		// First row ever: normalizeColumns would produce a zero row (span
		// 0) whatever the bounds say; the cached empty matrices carry no
		// information worth growing.
		moved = true
	}
	if moved {
		a.invalidateNorm()
		return
	}
	nrow := make([]float64, len(row))
	for j, v := range row {
		span := a.colMax[j] - a.colMin[j]
		if span != 0 {
			nrow[j] = (v - a.colMin[j]) / span
		}
	}
	a.ownNorm = appendRowMatrix(a.ownNorm, nrow)
	if a.dist != nil {
		a.growDistRow(idx)
	}
}

// appendSamples extends workload idx in place: delta accumulates into
// the counter totals and samples (if any) append to the time series.
// Totals updates may *shrink* a column bound (the old value could have
// been the extremum), so bounds are recomputed exactly by rescanning the
// column; unmoved bounds keep every cached row but idx valid.
func (a *Artifacts) appendSamples(idx int, delta perf.Values, samples *perf.TimeSeries) {
	w := &a.Meas.Workloads[idx]
	totalsChanged := delta != (perf.Values{})
	if totalsChanged {
		a.totalsVer++
		for c := perf.Counter(0); c < perf.NumCounters; c++ {
			if d := delta.Get(c); d != 0 {
				w.Totals.Add(c, d)
			}
		}
	}
	if samples != nil && samples.Len() > 0 {
		if w.Series.Len() == 0 {
			w.Series.Interval = samples.Interval
		}
		for c := range w.Series.Samples {
			w.Series.Samples[c] = append(w.Series.Samples[c], samples.Samples[c]...)
		}
		a.bumpSeriesVersion(idx)
	}
	if !totalsChanged {
		return
	}
	row := w.Totals.Vector(a.Opts.Counters)
	if a.raw != nil {
		a.raw.SetRow(idx, row)
	}
	if a.ownNorm == nil {
		return
	}
	x := a.Raw()
	moved := false
	for j := 0; j < x.Cols(); j++ {
		lo, hi := stat.MinMax(x.Col(j))
		if lo != a.colMin[j] || hi != a.colMax[j] {
			moved = true
			break
		}
	}
	if moved {
		a.invalidateNorm()
		return
	}
	nrow := make([]float64, len(row))
	for j, v := range row {
		span := a.colMax[j] - a.colMin[j]
		if span != 0 {
			nrow[j] = (v - a.colMin[j]) / span
		}
	}
	a.ownNorm.SetRow(idx, nrow)
	if a.dist != nil {
		a.updateDistRow(idx)
	}
}

// invalidateNorm drops the own-normalization-derived caches; the next
// access rebuilds them through the exact batch code path.
func (a *Artifacts) invalidateNorm() {
	a.ownNorm = nil
	a.colMin, a.colMax = nil, nil
	a.dist = nil
}

// growDistRow extends the cached distance matrix with row/column idx
// (the just-appended last row of ownNorm), computing only the n-1 new
// distances — in parallel over the existing rows, mirroring
// cluster.DistanceMatrix's mat.Dist(i, j) with i < j.
func (a *Artifacts) growDistRow(idx int) {
	x := a.ownNorm
	n := x.Rows()
	nd := make([][]float64, n)
	last := make([]float64, n)
	par.Do(idx, func(_, i int) {
		r := make([]float64, n)
		copy(r, a.dist[i])
		d := mat.Dist(x.RowView(i), x.RowView(idx))
		r[idx] = d
		nd[i] = r
		last[i] = d
	})
	nd[idx] = last
	a.dist = nd
}

// updateDistRow recomputes row/column idx of the cached distance matrix
// after workload idx's normalized row changed in place.
func (a *Artifacts) updateDistRow(idx int) {
	x := a.ownNorm
	n := x.Rows()
	par.Do(n, func(_, i int) {
		if i == idx {
			a.dist[idx][idx] = 0
			return
		}
		var d float64
		if i < idx {
			d = mat.Dist(x.RowView(i), x.RowView(idx))
		} else {
			d = mat.Dist(x.RowView(idx), x.RowView(i))
		}
		a.dist[i][idx] = d
		a.dist[idx][i] = d
	})
}

// ensureScratch grows the per-worker DTW scratch table to at least n
// slots. It must be called from the serial section before a parallel
// region hands out worker ids: growing the slice while workers index it
// would race.
func (a *Artifacts) ensureScratch(n int) {
	for len(a.scratch) < n {
		a.scratch = append(a.scratch, nil)
	}
}

// distancer returns worker w's reusable DTW scratch. Worker ids from
// par.Do/DoErr are stable within a pool, so each slot is owned by one
// goroutine at a time. The table is sized by ensureScratch at each
// parallel entry point, so a SetWorkers raise between scoring runs gets
// fresh slots instead of indexing past the table; the fallback covers
// only a SetWorkers racing a live run.
func (a *Artifacts) distancer(w int) *dtw.Distancer {
	if w >= len(a.scratch) {
		// Pool width grew after ensureScratch (SetWorkers mid-run); fall
		// back to a throwaway instance rather than racing on the slice.
		return dtw.NewDistancer()
	}
	if a.scratch[w] == nil {
		a.scratch[w] = dtw.NewDistancer()
	}
	return a.scratch[w]
}

// appendRowMatrix returns a new matrix with row appended to x.
func appendRowMatrix(x *mat.Matrix, row []float64) *mat.Matrix {
	out := mat.New(x.Rows()+1, x.Cols())
	for i := 0; i < x.Rows(); i++ {
		out.SetRow(i, x.RowView(i))
	}
	out.SetRow(x.Rows(), row)
	return out
}

// normalizeColumns min-max normalizes each column of x into [0,1] using
// the column's own bounds (used when a suite is scored in isolation).
func normalizeColumns(x *mat.Matrix) *mat.Matrix {
	out := mat.New(x.Rows(), x.Cols())
	for j := 0; j < x.Cols(); j++ {
		col := stat.Normalize(x.Col(j))
		for i, v := range col {
			out.Set(i, j, v)
		}
	}
	return out
}

// matrixFor extracts the n×m counter matrix of a suite restricted to the
// selected counters.
func matrixFor(sm *perf.SuiteMeasurement, counters []perf.Counter) *mat.Matrix {
	return mat.FromRows(sm.Matrix(counters))
}

// JointNormalize min-max normalizes the matrices of several suites with
// shared per-counter bounds (Eq. 9–10): the bounds come from the
// concatenation of all suites, so relative ranges between suites survive.
func JointNormalize(xs []*mat.Matrix) ([]*mat.Matrix, error) {
	mins, maxs, err := jointBounds(xs)
	if err != nil {
		return nil, err
	}
	return applyJointNorm(xs, mins, maxs), nil
}

// jointBounds computes the global per-counter min/max across every
// matrix (Eq. 9). Columns are independent, so the bound scan fans out
// per column; each task writes only its own mins[j]/maxs[j] slot.
func jointBounds(xs []*mat.Matrix) (mins, maxs []float64, err error) {
	if len(xs) == 0 {
		return nil, nil, fmt.Errorf("metric: JointNormalize with no matrices")
	}
	m := xs[0].Cols()
	for _, x := range xs {
		if x.Cols() != m {
			return nil, nil, fmt.Errorf("metric: JointNormalize column mismatch %d vs %d", x.Cols(), m)
		}
		if x.Rows() == 0 {
			return nil, nil, fmt.Errorf("metric: JointNormalize with empty matrix")
		}
	}
	mins = make([]float64, m)
	maxs = make([]float64, m)
	par.Do(m, func(_, j int) {
		first := true
		for _, x := range xs {
			for i := 0; i < x.Rows(); i++ {
				v := x.At(i, j)
				if first || v < mins[j] {
					mins[j] = v
				}
				if first || v > maxs[j] {
					maxs[j] = v
				}
				first = false
			}
		}
	})
	return mins, maxs, nil
}

// applyJointNorm normalizes every matrix with the shared bounds: one
// task per suite, each writing its own out[k].
func applyJointNorm(xs []*mat.Matrix, mins, maxs []float64) []*mat.Matrix {
	m := len(mins)
	out := make([]*mat.Matrix, len(xs))
	par.Do(len(xs), func(_, k int) {
		x := xs[k]
		nx := mat.New(x.Rows(), m)
		for j := 0; j < m; j++ {
			col := stat.NormalizeWith(x.Col(j), mins[j], maxs[j])
			for i, v := range col {
				nx.Set(i, j, v)
			}
		}
		out[k] = nx
	})
	return out
}

// TotalsOnly returns a shallow copy of sm with every time series dropped,
// keeping workload names and counter totals. Scoring the copy makes the
// trend metric's NeedsSeries capability check skip itself — the engine
// path that replaced the old hand-rolled ScoreSuiteNoTrend.
func TotalsOnly(sm *perf.SuiteMeasurement) *perf.SuiteMeasurement {
	out := &perf.SuiteMeasurement{
		Suite:     sm.Suite,
		Workloads: make([]perf.Measurement, len(sm.Workloads)),
	}
	for i, w := range sm.Workloads {
		out.Workloads[i] = perf.Measurement{Workload: w.Workload, Totals: w.Totals}
	}
	return out
}
