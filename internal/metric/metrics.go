package metric

import (
	"context"
	"fmt"

	"perspector/internal/cluster"
	"perspector/internal/par"
	"perspector/internal/pca"
	"perspector/internal/rng"
	"perspector/internal/stat"
)

// Names of the four stock paper metrics, as registered in
// DefaultRegistry and as accepted by Registry.Without.
const (
	MetricCluster  = "cluster"
	MetricTrend    = "trend"
	MetricCoverage = "coverage"
	MetricSpread   = "spread"
)

// Capabilities declares what a metric needs from a measurement and from
// the scoring run. The engine skips a metric whose needs the input cannot
// satisfy (leaving its Scores slot zero) instead of erroring: a
// totals-only CSV import simply comes back without a TrendScore.
type Capabilities struct {
	// NeedsSeries: the metric reads sampled time series; skipped for
	// totals-only measurements.
	NeedsSeries bool
	// NeedsJointNorm: the metric reads Artifacts.JointNorm; the engine
	// runs JointNormalize across the suites only if some registered
	// metric asks for it.
	NeedsJointNorm bool
}

// Metric is one suite-quality score over shared Artifacts.
type Metric interface {
	// Name keys the metric's slot in Scores and in Registry.Without.
	Name() string
	// Requires declares the metric's input capabilities.
	Requires() Capabilities
	// Compute evaluates the metric. Implementations poll ctx (directly or
	// through par.DoErr) so a cancelled scoring run stops promptly, and
	// reduce in fixed serial order so values are bit-identical at any
	// worker count.
	Compute(ctx context.Context, a *Artifacts) (float64, error)
}

// clusterMetric implements §III-A / Eq. 6: min-max normalize the suite's
// counter matrix, run k-means for every k in [2, n−1], compute the
// silhouette of each clustering, and average. Lower (poorer clustering)
// is better: the workloads do not clump.
//
// Suites with fewer than 4 workloads have no k in [2, n−1] beyond the
// trivial ones; for n == 3 the single k=2 silhouette is returned, and for
// n < 3 the score is 0 by the k=1 convention of Eq. 3.
type clusterMetric struct{}

func (clusterMetric) Name() string           { return MetricCluster }
func (clusterMetric) Requires() Capabilities { return Capabilities{} }

func (clusterMetric) Compute(ctx context.Context, a *Artifacts) (float64, error) {
	n := len(a.Meas.Workloads)
	if n < 3 {
		return 0, nil
	}
	x := a.OwnNorm()
	// One O(n²) distance matrix serves every silhouette of the sweep.
	dist := a.Dist()
	ks := n - 2 // k in [2, n-1]
	sils := make([]float64, ks)
	err := par.DoErr(ctx, ks, func(_, i int) error {
		k := i + 2
		km := cluster.DefaultKMeansOptions(rng.ChildSeed(a.Opts.KMeansSeed, k))
		km.Restarts = a.Opts.KMeansRestarts
		res, err := cluster.KMeans(x, k, km)
		if err != nil {
			return fmt.Errorf("metric: ClusterScore k=%d: %w", k, err)
		}
		// k-means can return fewer than k distinct labels only via the
		// empty-cluster repair, which guarantees non-empty clusters; the
		// silhouette is computed over exactly k clusters.
		s, err := cluster.SilhouetteDist(dist, res.Labels, k)
		if err != nil {
			return fmt.Errorf("metric: ClusterScore silhouette k=%d: %w", k, err)
		}
		sils[i] = s
		return nil
	})
	if err != nil {
		return 0, err
	}
	// Ordered reduction: the sum accumulates in k order exactly as the
	// serial loop did, so the score is bit-identical at any worker count.
	sum := 0.0
	for _, s := range sils {
		sum += s
	}
	return sum / float64(ks), nil
}

// trendMetric implements §III-B / Eq. 7–8: for every selected counter,
// normalize each workload's delta time series (CDF y-axis to [0,100],
// execution-percentile x-axis), compute all pairwise DTW distances, and
// average; the TrendScore is the mean over counters. Higher is better:
// the suite's workloads exhibit distinct phase behaviour.
type trendMetric struct{}

func (trendMetric) Name() string           { return MetricTrend }
func (trendMetric) Requires() Capabilities { return Capabilities{NeedsSeries: true} }

func (trendMetric) Compute(ctx context.Context, a *Artifacts) (float64, error) {
	n := len(a.Meas.Workloads)
	if n < 2 {
		return 0, nil
	}
	total := 0.0
	for _, c := range a.Opts.Counters {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		// TrendDists computes (or incrementally extends) the cached
		// pairwise DTW matrix; only pairs touching a changed series are
		// recomputed on an appended measurement.
		dists, err := a.TrendDists(ctx, c)
		if err != nil {
			return 0, err
		}
		// Reduce in the lexicographic order of the serial double loop, so
		// the sum never reassociates and the score is bit-identical to the
		// batch path at any worker count.
		sum := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				sum += 2 * dists[i][j] // Eq. 7 sums ordered pairs; DTW is symmetric
			}
		}
		total += sum / float64(n*(n-1))
	}
	return total / float64(len(a.Opts.Counters)), nil
}

// coverageMetric implements §III-C / Eq. 11–13 on the joint-normalized
// matrix: PCA retaining Opts.PCAVariance of the variance, then the mean
// variance of the retained components. Higher is better.
type coverageMetric struct{}

func (coverageMetric) Name() string           { return MetricCoverage }
func (coverageMetric) Requires() Capabilities { return Capabilities{NeedsJointNorm: true} }

func (coverageMetric) Compute(_ context.Context, a *Artifacts) (float64, error) {
	if a.JointNorm == nil {
		return 0, fmt.Errorf("metric: CoverageScore without joint-normalized matrix")
	}
	res, err := pca.Fit(a.JointNorm, a.Opts.PCAVariance)
	if err != nil {
		return 0, fmt.Errorf("metric: CoverageScore: %w", err)
	}
	return res.MeanComponentVariance(), nil
}

// spreadMetric implements §III-D / Eq. 14 on the joint-normalized matrix:
// for each workload (row), the two-sample KS statistic between its
// normalized counter values and an equal number of seeded uniform draws;
// the score is the mean over workloads. Lower is better (closer to a
// uniform covering of the parameter space).
type spreadMetric struct{}

func (spreadMetric) Name() string           { return MetricSpread }
func (spreadMetric) Requires() Capabilities { return Capabilities{NeedsJointNorm: true} }

func (spreadMetric) Compute(_ context.Context, a *Artifacts) (float64, error) {
	x := a.JointNorm
	if x == nil {
		return 0, fmt.Errorf("metric: SpreadScore without joint-normalized matrix")
	}
	if x.Rows() == 0 {
		return 0, fmt.Errorf("metric: SpreadScore on empty matrix")
	}
	src := rng.New(a.Opts.SpreadSeed)
	m := x.Cols()
	// One scratch row of uniforms, refilled in place: the RNG draw
	// sequence matches the old allocate-per-row loop exactly, and
	// KSTwoSample copies its inputs before sorting, so reuse is safe.
	uniform := make([]float64, m)
	sum := 0.0
	for i := 0; i < x.Rows(); i++ {
		for j := range uniform {
			uniform[j] = src.Float64()
		}
		sum += stat.KSTwoSample(x.RowView(i), uniform)
	}
	return sum / float64(x.Rows()), nil
}

// Registry is an ordered set of metrics. Order matters twice: metrics
// compute in registration order, and error precedence follows it.
type Registry struct {
	metrics []Metric
}

// NewRegistry builds a registry from the given metrics, in order.
// Duplicate names are rejected at construction so a scoring run never
// silently overwrites one metric's slot with another's.
func NewRegistry(ms ...Metric) (*Registry, error) {
	seen := make(map[string]bool, len(ms))
	for _, m := range ms {
		if seen[m.Name()] {
			return nil, fmt.Errorf("metric: duplicate metric %q", m.Name())
		}
		seen[m.Name()] = true
	}
	return &Registry{metrics: append([]Metric(nil), ms...)}, nil
}

// DefaultRegistry returns the four paper metrics in §III order:
// cluster, trend, coverage, spread.
func DefaultRegistry() *Registry {
	return &Registry{metrics: []Metric{
		clusterMetric{}, trendMetric{}, coverageMetric{}, spreadMetric{},
	}}
}

// Metrics returns the registered metrics in order. The slice is shared;
// callers must not mutate it.
func (r *Registry) Metrics() []Metric { return r.metrics }

// Without returns a registry with the named metrics removed — e.g.
// Without(MetricTrend) scores totals-style even when series exist.
func (r *Registry) Without(names ...string) *Registry {
	drop := make(map[string]bool, len(names))
	for _, n := range names {
		drop[n] = true
	}
	out := &Registry{}
	for _, m := range r.metrics {
		if !drop[m.Name()] {
			out.metrics = append(out.metrics, m)
		}
	}
	return out
}

// needs reports whether any registered metric requires the capability
// selected by pick.
func (r *Registry) needs(pick func(Capabilities) bool) bool {
	for _, m := range r.metrics {
		if pick(m.Requires()) {
			return true
		}
	}
	return false
}
