package source

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"perspector/internal/cache"
	"perspector/internal/perf"
	"perspector/internal/stage"
	"perspector/internal/suites"
	"perspector/internal/trace"
	"perspector/internal/workload"
)

func testConfig() suites.Config {
	cfg := suites.DefaultConfig()
	cfg.Instructions = 5_000
	cfg.Samples = 5
	return cfg
}

func testSuite(t *testing.T, cfg suites.Config) suites.Suite {
	t.Helper()
	s, err := suites.ByName("nbench", cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Specs = s.Specs[:2]
	return s
}

func openStore(t *testing.T) *cache.Store {
	t.Helper()
	st, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestCachingHitMiss(t *testing.T) {
	cfg := testConfig()
	s := testSuite(t, cfg)
	st := openStore(t)
	src := Caching{Inner: Simulator{Cfg: cfg}, Store: st}

	cold, err := src.Measure(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if st.Hits() != 0 || st.Misses() != 1 {
		t.Fatalf("cold run: %d hits, %d misses", st.Hits(), st.Misses())
	}
	warm, err := src.Measure(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if st.Hits() != 1 || st.Misses() != 1 {
		t.Fatalf("warm run: %d hits, %d misses", st.Hits(), st.Misses())
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("warm measurement differs from cold")
	}
}

func TestCachingCorruptEntryHeals(t *testing.T) {
	cfg := testConfig()
	s := testSuite(t, cfg)
	dir := t.TempDir()
	st, err := cache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	src := Caching{Inner: Simulator{Cfg: cfg}, Store: st}

	cold, err := src.Measure(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the entry on disk: the next Measure must treat it as a miss,
	// re-simulate, and heal the slot.
	entry := filepath.Join(dir, src.Key(s)+".json")
	if err := os.WriteFile(entry, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	healed, err := src.Measure(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, healed) {
		t.Fatal("healed measurement differs from original")
	}
	if st.Misses() != 2 {
		t.Fatalf("corrupt entry not counted as miss: %d misses", st.Misses())
	}
	// Third read hits the healed entry.
	if _, err := src.Measure(context.Background(), s); err != nil {
		t.Fatal(err)
	}
	if st.Hits() != 1 {
		t.Fatalf("healed entry not hit: %d hits", st.Hits())
	}
}

func TestCachingNilStorePassThrough(t *testing.T) {
	cfg := testConfig()
	s := testSuite(t, cfg)
	src := Caching{Inner: Simulator{Cfg: cfg}, Store: nil}
	direct, err := Simulator{Cfg: cfg}.Measure(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	through, err := src.Measure(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, through) {
		t.Fatal("nil-store Caching altered the measurement")
	}
}

func TestCachingKeylessSourceBypassesStore(t *testing.T) {
	cfg := testConfig()
	s := testSuite(t, cfg)
	m, err := Simulator{Cfg: cfg}.Measure(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteJSON(f, m); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st := openStore(t)
	src := Caching{Inner: TraceFile{Path: path}, Store: st}
	got, err := src.Measure(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatal("trace round-trip altered the measurement")
	}
	if st.Hits() != 0 || st.Misses() != 0 {
		t.Fatalf("keyless source touched the store: %d hits, %d misses", st.Hits(), st.Misses())
	}
}

func TestTraceFileCSVTotalsOnly(t *testing.T) {
	cfg := testConfig()
	s := testSuite(t, cfg)
	m, err := Simulator{Cfg: cfg}.Measure(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "totals.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteCSV(f, m, perf.AllCounters()); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got, err := TraceFile{Path: path, Format: "csv", SuiteName: "imported"}.
		Measure(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if got.Suite != "imported" {
		t.Fatalf("suite name = %q", got.Suite)
	}
	for i := range got.Workloads {
		if got.Workloads[i].Series.Len() != 0 {
			t.Fatalf("CSV import carries series for workload %d", i)
		}
	}
}

func TestTraceFileErrors(t *testing.T) {
	if _, err := (TraceFile{Path: "/nonexistent/trace.json"}).Measure(context.Background(), suites.Suite{}); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := (TraceFile{Path: "x", Format: "xml"}).Measure(context.Background(), suites.Suite{}); err == nil {
		t.Fatal("unknown format accepted")
	}
}

// TestInstrLogReplaysBitIdentically records a workload as an instruction
// log and replays it through InstrLog: the replayed measurement must be
// bit-identical to simulating the workload directly, and a corrupted log
// must fail the measurement instead of silently truncating it.
func TestInstrLogReplaysBitIdentically(t *testing.T) {
	cfg := testConfig()
	s := testSuite(t, cfg)
	spec := s.Specs[0]
	spec.Instructions = cfg.Instructions

	direct, err := Simulator{Cfg: cfg}.Measure(context.Background(),
		suites.Suite{Name: "replay", Specs: []workload.Spec{spec}})
	if err != nil {
		t.Fatal(err)
	}

	prog, err := workload.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.log")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.WriteInstrLog(f, prog, cfg.Instructions); err != nil {
		t.Fatal(err)
	}
	f.Close()

	src := InstrLog{Path: path, SuiteName: "replay", Cfg: cfg}
	got, err := src.Measure(context.Background(), suites.Suite{})
	if err != nil {
		t.Fatal(err)
	}
	if src.Key(suites.Suite{}) != "" {
		t.Fatal("instruction log claims a cache key")
	}
	if got.Suite != "replay" || len(got.Workloads) != 1 {
		t.Fatalf("measurement shape: suite=%q workloads=%d", got.Suite, len(got.Workloads))
	}
	dw, gw := &direct.Workloads[0], &got.Workloads[0]
	if dw.Totals != gw.Totals {
		t.Fatal("replayed totals differ from direct simulation")
	}
	for c := range dw.Series.Samples {
		if !reflect.DeepEqual(dw.Series.Samples[c], gw.Series.Samples[c]) {
			t.Fatalf("counter %d series not bit-identical after replay", c)
		}
	}

	// Corrupt a record mid-file: Measure must fail via the reader's Err.
	log, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	log[len(log)/2] = 'Q'
	bad := filepath.Join(t.TempDir(), "bad.log")
	if err := os.WriteFile(bad, log, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := (InstrLog{Path: bad, SuiteName: "replay", Cfg: cfg}).
		Measure(context.Background(), suites.Suite{}); err == nil {
		t.Fatal("corrupted log measured successfully")
	}
}

func TestKeysDistinguishSources(t *testing.T) {
	cfg := testConfig()
	s := testSuite(t, cfg)
	single := Simulator{Cfg: cfg}.Key(s)
	mc2 := Multicore{Cfg: cfg, Threads: 2}.Key(s)
	mc4 := Multicore{Cfg: cfg, Threads: 4}.Key(s)
	if single == mc2 || mc2 == mc4 || single == mc4 {
		t.Fatalf("keys collide: single=%s mc2=%s mc4=%s", single, mc2, mc4)
	}
	if (TraceFile{Path: "x"}).Key(s) != "" {
		t.Fatal("trace file claims a cache key")
	}
}

func TestCancelledMeasureNotCached(t *testing.T) {
	cfg := testConfig()
	s := testSuite(t, cfg)
	st := openStore(t)
	src := Caching{Inner: Simulator{Cfg: cfg}, Store: st}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := src.Measure(ctx, s)
	if err == nil {
		t.Fatal("cancelled measurement succeeded")
	}
	if !stage.Canceled(err) {
		t.Fatalf("error not recognized as cancellation: %v", err)
	}
	if _, ok := st.Get(src.Key(s)); ok {
		t.Fatal("cancelled (partial) measurement was cached")
	}
}
