// Package source abstracts where suite measurements come from. The
// scoring engine (internal/metric) only needs a *perf.SuiteMeasurement;
// whether it was simulated single-core, simulated as rate-style process
// clones on a multicore, or read back from an archived trace file is a
// Source implementation detail. The Caching decorator adds the
// content-addressed on-disk cache around any measuring source — wiring
// that both CLIs previously duplicated by hand.
//
// Every Measure takes a context: cancellation flows through the suite
// fan-out into the simulator loops, and failures surface as *stage.Error
// values tagged with stage.Measure and the suite/workload involved.
package source

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"

	"perspector/internal/cache"
	"perspector/internal/obs"
	"perspector/internal/perf"
	"perspector/internal/stage"
	"perspector/internal/suites"
	"perspector/internal/trace"
	"perspector/internal/uarch"
)

// Source produces the measurement of a suite.
type Source interface {
	// Measure executes (or loads) the measurement of s. Implementations
	// honour ctx cancellation and tag errors with stage.Measure.
	Measure(ctx context.Context, s suites.Suite) (*perf.SuiteMeasurement, error)
	// Key returns the content-address of the measurement Measure would
	// produce for s — everything that can change a counter value folds
	// into it. An empty key means "not cacheable" (e.g. a trace file,
	// which is already on disk); Caching passes such sources through.
	Key(s suites.Suite) string
}

// Simulator measures suites on the single-core microarchitecture
// simulator — the paper's methodology.
type Simulator struct {
	Cfg suites.Config
}

// Measure runs every workload of s on the simulator. Machines are drawn
// from uarch.DefaultMachinePool (a reused machine is Reset on checkout, so
// results are identical to fresh allocation): long-running consumers such
// as perspectord jobs stop paying a multi-MB L3 tag allocation per
// workload per request.
func (src Simulator) Measure(ctx context.Context, s suites.Suite) (*perf.SuiteMeasurement, error) {
	return suites.RunContext(ctx, s, src.Cfg)
}

// Key is the cache content-address: schema version, suite specs, config
// and machine configuration.
func (src Simulator) Key(s suites.Suite) string {
	return cache.Key(s, src.Cfg)
}

// Multicore measures suites as Threads homologous process clones per
// workload on a shared-L3 multicore machine (the rate-style setup).
type Multicore struct {
	Cfg     suites.Config
	Threads int
}

// Measure runs every workload of s as Threads clones with aggregated
// counters.
func (src Multicore) Measure(ctx context.Context, s suites.Suite) (*perf.SuiteMeasurement, error) {
	return suites.RunMulticoreContext(ctx, s, src.Cfg, src.Threads)
}

// Key extends the single-core content-address with the thread count, so
// multicore measurements never collide with single-core ones (or with a
// different thread count) in a shared cache directory.
func (src Multicore) Key(s suites.Suite) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\nmulticore-threads=%d\n", cache.Key(s, src.Cfg), src.Threads)
	return hex.EncodeToString(h.Sum(nil))
}

// TraceFile loads a previously exported measurement from disk instead of
// simulating: JSON traces carry totals and time series; CSV carries
// totals only (the engine's capability check then skips the trend
// metric). The suite argument to Measure is ignored — the file contents
// determine the measurement.
type TraceFile struct {
	Path string
	// Format is "json" (default when empty) or "csv".
	Format string
	// SuiteName names the imported suite for CSV input, which carries no
	// name of its own.
	SuiteName string
}

// Measure reads and decodes the trace file.
func (src TraceFile) Measure(ctx context.Context, _ suites.Suite) (*perf.SuiteMeasurement, error) {
	if err := ctx.Err(); err != nil {
		return nil, stage.Wrap(stage.Measure, src.SuiteName, "", err)
	}
	f, err := os.Open(src.Path)
	if err != nil {
		return nil, stage.Wrap(stage.Measure, src.SuiteName, "", err)
	}
	defer f.Close()
	var m *perf.SuiteMeasurement
	switch src.Format {
	case "", "json":
		m, err = trace.ReadJSON(f)
	case "csv":
		m, err = trace.ReadCSV(f, src.SuiteName)
	default:
		return nil, fmt.Errorf("source: unknown trace format %q", src.Format)
	}
	if err != nil {
		return nil, stage.Wrap(stage.Measure, src.SuiteName, "", err)
	}
	return m, nil
}

// Key returns "" — a trace file is already a materialized measurement,
// so caching it again would only duplicate bytes on disk.
func (src TraceFile) Key(_ suites.Suite) string { return "" }

// InstrLog replays a recorded instruction log (the trace package's
// streaming line format) through the simulator. The log streams off disk
// in bounded memory via trace.ProgramReader, so multi-GB collection
// dumps replay without ever being materialized. The suite argument to
// Measure is ignored — the log is the workload.
type InstrLog struct {
	Path string
	// SuiteName labels the resulting single-workload measurement.
	SuiteName string
	// Cfg supplies the machine configuration, sample count, and
	// totals-only switch. Cfg.Instructions is the replay budget unless
	// MaxInstr overrides it; replay stops early if the log ends first.
	Cfg suites.Config
	// MaxInstr optionally overrides Cfg.Instructions as the budget.
	MaxInstr uint64
}

// Measure streams the log through a pooled machine and returns a
// single-workload suite measurement. A malformed record fails the
// measurement (the simulator alone cannot distinguish "log ended" from
// "log broke", so the reader's error is checked after the run).
func (src InstrLog) Measure(ctx context.Context, _ suites.Suite) (*perf.SuiteMeasurement, error) {
	fail := func(err error) (*perf.SuiteMeasurement, error) {
		return nil, stage.Wrap(stage.Measure, src.SuiteName, src.SuiteName, err)
	}
	budget := src.MaxInstr
	if budget == 0 {
		budget = src.Cfg.Instructions
	}
	if err := src.Cfg.Validate(); err != nil {
		return nil, err
	}
	f, err := os.Open(src.Path)
	if err != nil {
		return fail(err)
	}
	defer f.Close()
	pr := trace.NewProgramReader(bufio.NewReaderSize(f, 1<<20), src.SuiteName)
	mc := src.Cfg.Machine
	mc.SampleInterval = budget / uint64(src.Cfg.Samples)
	if mc.SampleInterval == 0 {
		mc.SampleInterval = 1
	}
	mc.CountersOnly = src.Cfg.TotalsOnly
	m, err := uarch.DefaultMachinePool.Get(mc)
	if err != nil {
		return fail(err)
	}
	defer uarch.DefaultMachinePool.Put(m)
	meas, err := m.RunContext(ctx, pr, budget)
	if err != nil {
		return fail(err)
	}
	if err := pr.Err(); err != nil {
		return fail(err)
	}
	return &perf.SuiteMeasurement{
		Suite:     src.SuiteName,
		Workloads: []perf.Measurement{*meas},
	}, nil
}

// Key returns "" — a replayed log is raw input, not a reproducible
// function of a suite definition, so it bypasses the cache.
func (src InstrLog) Key(_ suites.Suite) string { return "" }

// Caching decorates a Source with the content-addressed on-disk cache:
// hit → decode the stored trace (bit-exact, see cache package doc);
// miss → measure through the inner source and fill the entry. A nil
// Store and a keyless inner source both degenerate to pass-through.
type Caching struct {
	Inner Source
	Store *cache.Store
}

// Measure returns the cached measurement when warm, else measures via
// the inner source and stores the result. A failed store write (e.g.
// full disk) never fails the measurement itself.
func (src Caching) Measure(ctx context.Context, s suites.Suite) (*perf.SuiteMeasurement, error) {
	ctx, span := obs.Start(ctx, "measure", obs.String("suite", s.Name))
	defer span.End()
	key := src.Inner.Key(s)
	if key == "" {
		span.SetAttr("cache", "bypass")
		return src.Inner.Measure(ctx, s)
	}
	if m, ok := src.Store.Get(key); ok {
		span.SetAttr("cache", "hit")
		obs.FromContext(ctx).Count(obs.CounterCacheHits, 1)
		return m, nil
	}
	span.SetAttr("cache", "miss")
	obs.FromContext(ctx).Count(obs.CounterCacheMisses, 1)
	m, err := src.Inner.Measure(ctx, s)
	if err != nil {
		return nil, err
	}
	if err := src.Store.Put(key, m); err != nil {
		return m, nil
	}
	return m, nil
}

// Key forwards the inner source's content-address, so Caching decorators
// compose transparently.
func (src Caching) Key(s suites.Suite) string { return src.Inner.Key(s) }
