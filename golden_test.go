package perspector_test

// Golden equivalence: the staged scoring engine (internal/metric) must
// reproduce the pre-refactor scores bit-for-bit. The values below were
// pinned from the scoring code before the engine existed, at the
// determinism configuration (40k instructions, 50 samples, seed 2023,
// default options, joint normalization over all six stock suites). They
// are hex float literals, so the comparison is exact — any change to
// evaluation order, normalization bounds, or parallel reduction shape
// fails this test, through the legacy wrappers and the engine entry
// points alike, at any worker count.

import (
	"context"
	"runtime"
	"testing"

	"perspector"
	"perspector/internal/metric"
	"perspector/internal/obs"
)

var goldenScores = []perspector.Scores{
	{Suite: "parsec", Cluster: 0x1.67d5bbfac6474p-03, Trend: 0x1.45b6bdfe054f7p+06, Coverage: 0x1.54bae03eec78dp-04, Spread: 0x1.d89d89d89d89fp-02},
	{Suite: "spec17", Cluster: 0x1.9c8dd1d943a99p-03, Trend: 0x1.3d77ee18b0693p+06, Coverage: 0x1.acf0ec7362a22p-04, Spread: 0x1.d212b601b3749p-02},
	{Suite: "ligra", Cluster: 0x1.5c302bbb277abp-02, Trend: 0x1.dcaf822ce20c2p+04, Coverage: 0x1.e980d2c9b25b3p-05, Spread: 0x1.5b6db6db6db6ep-02},
	{Suite: "lmbench", Cluster: 0x1.f70f675496d4cp-03, Trend: 0x1.09d73ff81c796p+07, Coverage: 0x1.b81a69ee594b8p-04, Spread: 0x1.74bf4bf4bf4cp-01},
	{Suite: "nbench", Cluster: 0x1.329de55a04b91p-02, Trend: 0x1.412494f6ca6e2p+06, Coverage: 0x1.07515a45e0585p-06, Spread: 0x1.715f15f15f15fp-01},
	{Suite: "sgxgauge", Cluster: 0x1.4b1a295921a31p-03, Trend: 0x1.33dc5ba13ea3ap+06, Coverage: 0x1.400418ac427f8p-04, Spread: 0x1.a492492492494p-02},
}

func TestGoldenEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("measures all six suites")
	}
	cfg := determinismConfig()
	ms, err := perspector.MeasureAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := perspector.DefaultOptions()
	old := perspector.SetWorkers(1)
	defer perspector.SetWorkers(old)
	for _, workers := range []int{1, 3, runtime.NumCPU()} {
		perspector.SetWorkers(workers)

		legacy, err := perspector.Compare(ms, opts)
		if err != nil {
			t.Fatal(err)
		}
		requireIdenticalScores(t, "legacy wrapper", goldenScores, legacy)

		viaCtx, err := perspector.CompareContext(context.Background(), ms, opts)
		if err != nil {
			t.Fatal(err)
		}
		requireIdenticalScores(t, "CompareContext", goldenScores, viaCtx)

		engine, err := metric.ScoreSuites(context.Background(), ms, opts, nil)
		if err != nil {
			t.Fatal(err)
		}
		requireIdenticalScores(t, "engine", goldenScores, engine)
	}
}

// TestGoldenEquivalenceWithRecorder is the observability determinism
// guardrail: attaching a telemetry recorder must not perturb a single
// bit of the scores. It runs the measured + scored pipeline under a
// live recorder (spans in every stage, worker spans in every fan-out)
// and requires the same goldens as the bare run — telemetry is
// read-only with respect to the numerics.
func TestGoldenEquivalenceWithRecorder(t *testing.T) {
	if testing.Short() {
		t.Skip("measures all six suites")
	}
	cfg := determinismConfig()
	rec := obs.NewRecorder()
	ctx := obs.WithRecorder(context.Background(), rec)
	ms, err := perspector.MeasureAllContext(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := perspector.DefaultOptions()
	old := perspector.SetWorkers(3)
	defer perspector.SetWorkers(old)
	scores, err := perspector.CompareContext(ctx, ms, opts)
	if err != nil {
		t.Fatal(err)
	}
	requireIdenticalScores(t, "recorder attached", goldenScores, scores)
	if rec.Len() == 0 {
		t.Fatal("recorder collected no spans — the pipeline is not instrumented")
	}
}

// TestGoldenSingleSuite pins the single-suite path too: Score must agree
// with ScoreContext, and since a lone suite degenerates to its own
// normalization bounds, both must agree with each other bit-for-bit.
func TestGoldenSingleSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("measures a suite")
	}
	cfg := determinismConfig()
	m, err := perspector.Measure(mustSuite(t, "nbench", cfg), cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := perspector.DefaultOptions()
	legacy, err := perspector.Score(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	viaCtx, err := perspector.ScoreContext(context.Background(), m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if legacy != viaCtx {
		t.Fatalf("Score %+v != ScoreContext %+v", legacy, viaCtx)
	}
}

func mustSuite(t *testing.T, name string, cfg perspector.Config) perspector.Suite {
	t.Helper()
	s, err := perspector.SuiteByName(name, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
