package perspector_test

// Benchmark harness: one benchmark per paper table/figure (the cost of
// regenerating it) plus ablation benchmarks for the design choices called
// out in DESIGN.md. Quality numbers — who wins, by what factor — are
// emitted via b.ReportMetric so `go test -bench` output doubles as the
// experiment log.
//
// All figure benchmarks run against a shared, lazily-built measurement set
// with a reduced (but non-trivial) simulation budget so `-bench=.`
// completes in minutes, not hours. EXPERIMENTS.md records full-budget
// results produced by cmd/figures.

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"perspector"
	"perspector/internal/cluster"
	"perspector/internal/core"
	"perspector/internal/dtw"
	"perspector/internal/lhs"
	"perspector/internal/mat"
	"perspector/internal/metric"
	"perspector/internal/obs"
	"perspector/internal/pca"
	"perspector/internal/perf"
	"perspector/internal/rng"
)

var (
	benchOnce sync.Once
	benchMeas []*perspector.Measurement
	benchErr  error
)

func benchConfig() perspector.Config {
	// Benchmarks use the paper's full configuration: reducing the
	// instruction budget or the sample interval starves low-activity
	// counters of the OS-noise trickle, reintroducing sparse-event
	// staircases that invert trend metrics. The suite simulation runs
	// once (sync.Once) and costs a few seconds.
	return perspector.DefaultConfig()
}

func measurements(b *testing.B) []*perspector.Measurement {
	b.Helper()
	benchOnce.Do(func() {
		benchMeas, benchErr = perspector.MeasureAll(benchConfig())
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchMeas
}

func suiteMeas(b *testing.B, name string) *perspector.Measurement {
	b.Helper()
	for _, m := range measurements(b) {
		if m.Suite == name {
			return m
		}
	}
	b.Fatalf("suite %q not measured", name)
	return nil
}

// benchFig3 scores all six suites under one event group and reports the
// best suite's value per score as metrics.
func benchFig3(b *testing.B, group string) {
	ms := measurements(b)
	opts := perspector.DefaultOptions()
	counters, err := perspector.EventGroup(group)
	if err != nil {
		b.Fatal(err)
	}
	opts.Counters = counters
	var scores []perspector.Scores
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scores, err = perspector.Compare(ms, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// Emit the discriminating quantities of the figure.
	var worstCluster, bestTrend, bestCoverage float64
	for _, s := range scores {
		if s.Cluster > worstCluster {
			worstCluster = s.Cluster
		}
		if s.Trend > bestTrend {
			bestTrend = s.Trend
		}
		if s.Coverage > bestCoverage {
			bestCoverage = s.Coverage
		}
	}
	b.ReportMetric(worstCluster, "worst-cluster")
	b.ReportMetric(bestTrend, "best-trend")
	b.ReportMetric(bestCoverage*1000, "best-coverage(x1e3)")
}

// BenchmarkFig3aAllCounters regenerates Fig. 3a: four scores, six suites,
// all 14 Table-IV events.
func BenchmarkFig3aAllCounters(b *testing.B) { benchFig3(b, "all") }

// BenchmarkFig3bLLCOnly regenerates Fig. 3b: focused scoring on
// LLC-related events.
func BenchmarkFig3bLLCOnly(b *testing.B) { benchFig3(b, "llc") }

// BenchmarkFig3cTLBOnly regenerates Fig. 3c: focused scoring on
// TLB-related events.
func BenchmarkFig3cTLBOnly(b *testing.B) { benchFig3(b, "tlb") }

// BenchmarkFig1TrendNormalization regenerates Fig. 1: the two-axis
// normalization of the LLC-load-miss series of the five SGXGauge
// workloads the paper plots.
func BenchmarkFig1TrendNormalization(b *testing.B) {
	sgx := suiteMeas(b, "sgxgauge")
	want := map[string]bool{
		"sgxgauge.pagerank": true, "sgxgauge.hashjoin": true,
		"sgxgauge.bfs": true, "sgxgauge.btree": true, "sgxgauge.openssl": true,
	}
	var series [][]float64
	for _, w := range sgx.Workloads {
		if want[w.Workload] {
			series = append(series, w.Series.Series(perf.LLCLoadMisses))
		}
	}
	if len(series) != 5 {
		b.Fatalf("found %d of the 5 Fig. 1 workloads", len(series))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range series {
			dtw.NormalizeSeries(s, 100)
		}
	}
}

// BenchmarkFig2CoverageVsSpread regenerates Fig. 2's synthetic
// demonstration: an outlier-inflated point set scores high coverage but
// poor spread; a uniform set scores well on both.
func BenchmarkFig2CoverageVsSpread(b *testing.B) {
	src := rng.New(2023)
	const dims = 8
	wa := mat.New(16, dims)
	for i := 0; i < 14; i++ {
		for j := 0; j < dims; j++ {
			wa.Set(i, j, 0.45+0.1*src.Float64())
		}
	}
	for j := 0; j < dims; j++ {
		wa.Set(14, j, 0) // two corner outliers inflate the variance
		wa.Set(15, j, 1)
	}
	wb := mat.New(16, dims)
	for i := 0; i < 16; i++ {
		for j := 0; j < dims; j++ {
			wb.Set(i, j, src.Float64())
		}
	}
	opts := perspector.DefaultOptions()
	var spA, spB float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if _, err = core.CoverageScore(wa, opts); err != nil {
			b.Fatal(err)
		}
		if _, err = core.CoverageScore(wb, opts); err != nil {
			b.Fatal(err)
		}
		if spA, err = core.SpreadScore(wa, opts); err != nil {
			b.Fatal(err)
		}
		if spB, err = core.SpreadScore(wb, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(spA/spB, "spread-ratio-WA/WB")
}

// BenchmarkFig4Clustering regenerates Fig. 4: 2-D PCA projection and
// k-means labels for Nbench and SGXGauge.
func BenchmarkFig4Clustering(b *testing.B) {
	for _, name := range []string{"nbench", "sgxgauge"} {
		m := suiteMeas(b, name)
		x := mat.FromRows(m.Matrix(perf.AllCounters()))
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				normed, err := core.JointNormalize([]*mat.Matrix{x})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := pca.Fit(normed[0], 1.0); err != nil {
					b.Fatal(err)
				}
				if _, err := cluster.KMeans(normed[0], 2, cluster.DefaultKMeansOptions(1)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig5LLCMissTrends regenerates Fig. 5: normalized LLC-miss
// trend curves of Nbench vs SPEC'17 and the trend-score gap between them.
func BenchmarkFig5LLCMissTrends(b *testing.B) {
	nb := suiteMeas(b, "nbench")
	sp := suiteMeas(b, "spec17")
	opts := perspector.DefaultOptions()
	opts.Counters = []perspector.Counter{perf.LLCLoadMisses}
	var tNb, tSp float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if tNb, err = core.TrendScore(nb, opts); err != nil {
			b.Fatal(err)
		}
		if tSp, err = core.TrendScore(sp, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if tNb > 0 {
		b.ReportMetric(tSp/tNb, "spec17/nbench-trend")
	}
}

// BenchmarkFig6PCACoverage regenerates Fig. 6: joint normalization of
// LMbench and SPEC'17 plus a shared PCA plane.
func BenchmarkFig6PCACoverage(b *testing.B) {
	lm := suiteMeas(b, "lmbench")
	sp := suiteMeas(b, "spec17")
	xl := mat.FromRows(lm.Matrix(perf.AllCounters()))
	xs := mat.FromRows(sp.Matrix(perf.AllCounters()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		normed, err := core.JointNormalize([]*mat.Matrix{xl, xs})
		if err != nil {
			b.Fatal(err)
		}
		union := normed[0].VStack(normed[1])
		res, err := pca.Fit(union, 1.0)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := res.Project(normed[0]); err != nil {
			b.Fatal(err)
		}
		if _, err := res.Project(normed[1]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSubsetGeneration regenerates §IV-C: SPEC'17 43→8 via LHS,
// reporting the score deviation.
func BenchmarkSubsetGeneration(b *testing.B) {
	sp := suiteMeas(b, "spec17")
	opts := perspector.DefaultOptions()
	so := perspector.DefaultSubsetOptions(8)
	var res *perspector.SubsetResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = perspector.GenerateSubset(sp, opts, so)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(100*res.Deviation, "deviation-%")
}

// BenchmarkSimulateSuite measures raw simulator throughput: executing the
// Nbench suite end to end (the substrate cost behind every figure).
func BenchmarkSimulateSuite(b *testing.B) {
	cfg := benchConfig()
	s, err := perspector.SuiteByName("nbench", cfg)
	if err != nil {
		b.Fatal(err)
	}
	totalInstr := cfg.Instructions * uint64(len(s.Specs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := perspector.Measure(s, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(totalInstr), "instructions/op")
}

// BenchmarkSimulateWorkload measures the simulator on a single workload —
// the first Nbench kernel — so per-core throughput is separable from the
// suite-level number, which folds in the worker fan-out and any
// cross-workload machine reuse.
func BenchmarkSimulateWorkload(b *testing.B) {
	cfg := benchConfig()
	s, err := perspector.SuiteByName("nbench", cfg)
	if err != nil {
		b.Fatal(err)
	}
	s.Specs = s.Specs[:1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := perspector.Measure(s, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(cfg.Instructions), "instructions/op")
}

// BenchmarkSimulateSuiteTotalsOnly is BenchmarkSimulateSuite through the
// counters-only fast path: no sampled series is built, and the totals are
// pinned bit-identical to the full run by TestCountersOnlyMatchesFullTotals.
func BenchmarkSimulateSuiteTotalsOnly(b *testing.B) {
	cfg := benchConfig()
	cfg.TotalsOnly = true
	s, err := perspector.SuiteByName("nbench", cfg)
	if err != nil {
		b.Fatal(err)
	}
	totalInstr := cfg.Instructions * uint64(len(s.Specs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := perspector.Measure(s, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(totalInstr), "instructions/op")
}

// BenchmarkSimulateSuiteRecorder is BenchmarkSimulateSuite with a live
// telemetry recorder attached — the pair quantifies the span overhead
// the observability acceptance criterion bounds at 2%. A fresh recorder
// per iteration keeps the arena from amortizing across iterations.
func BenchmarkSimulateSuiteRecorder(b *testing.B) {
	cfg := benchConfig()
	s, err := perspector.SuiteByName("nbench", cfg)
	if err != nil {
		b.Fatal(err)
	}
	totalInstr := cfg.Instructions * uint64(len(s.Specs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := obs.WithRecorder(context.Background(), obs.NewRecorder())
		if _, err := perspector.MeasureContext(ctx, s, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(totalInstr), "instructions/op")
}

// --- Ablation benchmarks (DESIGN.md "Design choices" section) ---

// BenchmarkAblationKMeansSeeding compares k-means++ seeding against the
// same pipeline with a single restart (effectively random-ish seeding):
// the metric is the inertia ratio (1.0 = no benefit from restarts).
func BenchmarkAblationKMeansSeeding(b *testing.B) {
	sp := suiteMeas(b, "spec17")
	x := mat.FromRows(sp.Matrix(perf.AllCounters()))
	normed, err := core.JointNormalize([]*mat.Matrix{x})
	if err != nil {
		b.Fatal(err)
	}
	data := normed[0]
	multi := cluster.DefaultKMeansOptions(1)
	single := cluster.DefaultKMeansOptions(1)
	single.Restarts = 1
	var inertiaMulti, inertiaSingle float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rm, err := cluster.KMeans(data, 6, multi)
		if err != nil {
			b.Fatal(err)
		}
		rs, err := cluster.KMeans(data, 6, single)
		if err != nil {
			b.Fatal(err)
		}
		inertiaMulti, inertiaSingle = rm.Inertia, rs.Inertia
	}
	b.StopTimer()
	if inertiaMulti > 0 {
		b.ReportMetric(inertiaSingle/inertiaMulti, "single/multi-inertia")
	}
}

// BenchmarkAblationDTWBand compares full DTW against a Sakoe–Chiba band
// of width 10 on the TrendScore pipeline: the band trades a bounded
// distance error for a large speedup.
func BenchmarkAblationDTWBand(b *testing.B) {
	sgx := suiteMeas(b, "sgxgauge")
	for _, variant := range []struct {
		name string
		band int
	}{{"full", 0}, {"band10", 10}} {
		b.Run(variant.name, func(b *testing.B) {
			opts := perspector.DefaultOptions()
			opts.DTWBand = variant.band
			var t float64
			for i := 0; i < b.N; i++ {
				var err error
				t, err = core.TrendScore(sgx, opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(t, "trend")
		})
	}
}

// BenchmarkAblationTrendNormalization compares the event-CDF trend
// normalization (used by TrendScore) against the value-CDF alternative
// reading of §III-B1. The metric is the LMbench/PARSEC trend ratio: the
// paper requires LMbench (steady micros) well below PARSEC; the value-CDF
// variant inverts that by rank-amplifying sampling noise.
func BenchmarkAblationTrendNormalization(b *testing.B) {
	lm := suiteMeas(b, "lmbench")
	pa := suiteMeas(b, "parsec")
	trend := func(m *perspector.Measurement, valueCDF bool) float64 {
		opts := perspector.DefaultOptions()
		opts.TrendValueCDF = valueCDF
		t, err := core.TrendScore(m, opts)
		if err != nil {
			b.Fatal(err)
		}
		return t
	}
	var ratioEvent, ratioValue float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ratioEvent = trend(lm, false) / trend(pa, false)
		ratioValue = trend(lm, true) / trend(pa, true)
	}
	b.StopTimer()
	b.ReportMetric(ratioEvent, "lmbench/parsec-eventCDF")
	b.ReportMetric(ratioValue, "lmbench/parsec-valueCDF")
}

// BenchmarkAblationJointNormalization compares joint vs isolated min-max
// normalization for the CoverageScore (§III-C1). The metric is the ratio
// of Nbench's coverage under isolated normalization to its coverage under
// joint normalization: isolated normalization wildly inflates the tiny
// suite because its minuscule ranges stretch to [0,1].
func BenchmarkAblationJointNormalization(b *testing.B) {
	nb := suiteMeas(b, "nbench")
	sp := suiteMeas(b, "spec17")
	xn := mat.FromRows(nb.Matrix(perf.AllCounters()))
	xs := mat.FromRows(sp.Matrix(perf.AllCounters()))
	opts := perspector.DefaultOptions()
	var joint, isolated float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		normedJ, err := core.JointNormalize([]*mat.Matrix{xn, xs})
		if err != nil {
			b.Fatal(err)
		}
		if joint, err = core.CoverageScore(normedJ[0], opts); err != nil {
			b.Fatal(err)
		}
		normedI, err := core.JointNormalize([]*mat.Matrix{xn})
		if err != nil {
			b.Fatal(err)
		}
		if isolated, err = core.CoverageScore(normedI[0], opts); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if joint > 0 {
		b.ReportMetric(isolated/joint, "isolated/joint-coverage")
	}
}

// BenchmarkAblationLHSVsRandomSubset compares LHS-driven subset selection
// against uniform random subsets of the same size: the metric is each
// strategy's mean score deviation (lower is better).
func BenchmarkAblationLHSVsRandomSubset(b *testing.B) {
	sp := suiteMeas(b, "spec17")
	opts := perspector.DefaultOptions()
	var lhsDev, randDev float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := perspector.GenerateSubset(sp, opts, perspector.DefaultSubsetOptions(8))
		if err != nil {
			b.Fatal(err)
		}
		lhsDev = res.Deviation

		// Random baseline: pick 8 uniformly, score identically.
		src := rng.New(99)
		idx := src.Perm(len(sp.Workloads))[:8]
		sub := &perf.SuiteMeasurement{Suite: "rand"}
		for _, k := range idx {
			sub.Workloads = append(sub.Workloads, sp.Workloads[k])
		}
		scores, err := core.ScoreSuites([]*perf.SuiteMeasurement{sp, sub}, opts)
		if err != nil {
			b.Fatal(err)
		}
		randDev = deviationOf(scores[0], scores[1])
	}
	b.StopTimer()
	b.ReportMetric(100*lhsDev, "lhs-deviation-%")
	b.ReportMetric(100*randDev, "random-deviation-%")
}

func deviationOf(full, sub core.Scores) float64 {
	rel := func(f, s float64) float64 {
		if f == 0 {
			if s == 0 {
				return 0
			}
			return 1
		}
		d := (s - f) / f
		if d < 0 {
			d = -d
		}
		return d
	}
	return (rel(full.Cluster, sub.Cluster) + rel(full.Trend, sub.Trend) +
		rel(full.Coverage, sub.Coverage) + rel(full.Spread, sub.Spread)) / 4
}

// BenchmarkAblationHierarchicalBaseline runs the prior-work pipeline
// (Table I): normalize → PCA → agglomerative hierarchical clustering →
// cut. The metric is the silhouette of the resulting flat clustering,
// comparable against Perspector's k-means silhouettes.
func BenchmarkAblationHierarchicalBaseline(b *testing.B) {
	sp := suiteMeas(b, "spec17")
	x := mat.FromRows(sp.Matrix(perf.AllCounters()))
	normed, err := core.JointNormalize([]*mat.Matrix{x})
	if err != nil {
		b.Fatal(err)
	}
	res, err := pca.Fit(normed[0], 0.98)
	if err != nil {
		b.Fatal(err)
	}
	reduced := res.Transformed
	var sil float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dg, err := cluster.Hierarchical(reduced, cluster.AverageLinkage)
		if err != nil {
			b.Fatal(err)
		}
		labels, err := dg.Cut(6)
		if err != nil {
			b.Fatal(err)
		}
		sil, err = cluster.Silhouette(reduced, labels, 6)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(sil, "silhouette")
}

// BenchmarkAblationWarmupDrop quantifies the warmup-sample sensitivity of
// the TrendScore: with no warmup exclusion, cold-start fills masquerade
// as phases for steady suites.
func BenchmarkAblationWarmupDrop(b *testing.B) {
	nb := suiteMeas(b, "nbench")
	var with, without float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := perspector.DefaultOptions()
		var err error
		if with, err = core.TrendScore(nb, opts); err != nil {
			b.Fatal(err)
		}
		opts.WarmupFrac = 0
		if without, err = core.TrendScore(nb, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if with > 0 {
		b.ReportMetric(without/with, "noWarmupDrop/withDrop-trend")
	}
}

// BenchmarkLHSSampling isolates the Latin Hypercube sampler at the
// paper's dimensions (8 samples × 14 counters, maximin over 32 designs).
func BenchmarkLHSSampling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := lhs.SampleMaximin(8, 14, uint64(i+1), 32); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPrefetcher re-measures one suite on a machine with the
// next-line prefetcher enabled and reports how the suite's CoverageScore
// moves — the "tune a suite for a target system" use case from the
// paper's abstract: scores are a property of (suite, machine), and a
// microarchitectural change shifts them.
func BenchmarkAblationPrefetcher(b *testing.B) {
	base := benchConfig()
	pf := base
	pf.Machine.NextLinePrefetch = true
	suite, err := perspector.SuiteByName("lmbench", base)
	if err != nil {
		b.Fatal(err)
	}
	opts := perspector.DefaultOptions()
	var covBase, covPf float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mBase, err := perspector.Measure(suite, base)
		if err != nil {
			b.Fatal(err)
		}
		mPf, err := perspector.Measure(suite, pf)
		if err != nil {
			b.Fatal(err)
		}
		sBase, err := perspector.Score(mBase, opts)
		if err != nil {
			b.Fatal(err)
		}
		sPf, err := perspector.Score(mPf, opts)
		if err != nil {
			b.Fatal(err)
		}
		covBase, covPf = sBase.Coverage, sPf.Coverage
	}
	b.StopTimer()
	if covBase > 0 {
		b.ReportMetric(covPf/covBase, "prefetch/base-coverage")
	}
}

// --- Incremental scoring A/B (streaming-score acceptance pair) ---

// benchStreamMeasurement fabricates a deterministic measurement with n
// workloads, each carrying totals and a samples-long delta series per
// counter — the shape a perspectord stream accumulates chunk by chunk.
func benchStreamMeasurement(seed uint64, n, samples int) *perf.SuiteMeasurement {
	src := rng.New(seed)
	sm := &perf.SuiteMeasurement{Suite: "streambench"}
	for i := 0; i < n; i++ {
		m := perf.Measurement{Workload: fmt.Sprintf("w%02d", i)}
		m.Series.Interval = 1000
		for c := 0; c < int(perf.NumCounters); c++ {
			m.Totals[perf.Counter(c)] = uint64(src.Intn(50000))
			for s := 0; s < samples; s++ {
				m.Series.Samples[perf.Counter(c)] = append(
					m.Series.Samples[perf.Counter(c)], float64(src.Intn(2000)))
			}
		}
		sm.Workloads = append(sm.Workloads, m)
	}
	return sm
}

// BenchmarkFullRescore is the batch baseline of the incremental A/B
// pair: one op scores a fixed 64-workload measurement from scratch —
// the cost a streaming client would pay per chunk without the
// incremental engine.
func BenchmarkFullRescore(b *testing.B) {
	sm := benchStreamMeasurement(2023, 64, 64)
	opts := perspector.DefaultOptions()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := metric.ScoreSuites(ctx, []*perf.SuiteMeasurement{sm}, opts, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// benchIncrementalAppend is the shared body of the incremental append
// benchmarks: a run already holding the 64-workload measurement with
// every artifact cached, where one op appends a chunk to one workload
// and rescores. withTotals selects whether the chunk carries a counter
// totals delta alongside its series samples.
func benchIncrementalAppend(b *testing.B, withTotals bool) {
	sm := benchStreamMeasurement(2023, 64, 64)
	opts := perspector.DefaultOptions()
	ctx := context.Background()
	run, err := metric.NewIncrementalRun([]*perf.SuiteMeasurement{sm}, opts, nil)
	if err != nil {
		b.Fatal(err)
	}
	// Build every cache once; the benchmark starts in the steady state.
	if _, err := run.Scores(ctx); err != nil {
		b.Fatal(err)
	}
	names := make([]string, len(run.Measurement(0).Workloads))
	for i := range names {
		names[i] = run.Measurement(0).Workloads[i].Workload
	}
	src := rng.New(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var delta perf.Values
		tail := &perf.TimeSeries{Interval: 1000}
		for c := 0; c < int(perf.NumCounters); c++ {
			if withTotals {
				delta[perf.Counter(c)] = uint64(src.Intn(500))
			}
			tail.Samples[perf.Counter(c)] = []float64{
				float64(src.Intn(2000)), float64(src.Intn(2000))}
		}
		if err := run.AppendSamples(0, names[i%len(names)], delta, tail); err != nil {
			b.Fatal(err)
		}
		if _, err := run.Scores(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncrementalAppend measures the steady state of the streaming
// path: one op appends a sample chunk (two series samples per counter)
// to one workload and rescores. The counter matrix is untouched, so the
// cluster/coverage/spread results stay memoized and only the touched
// row's DTW pair distances recompute; the property test in
// internal/metric pins each update bit-identical to the batch path.
func BenchmarkIncrementalAppend(b *testing.B) { benchIncrementalAppend(b, false) }

// BenchmarkIncrementalAppendTotals is the worst-case chunk: a counter
// totals delta rides along with the samples, so the normalization
// bounds, the distance matrix and every totals-derived metric (the full
// k-means sweep included) recompute alongside the DTW row.
func BenchmarkIncrementalAppendTotals(b *testing.B) { benchIncrementalAppend(b, true) }
