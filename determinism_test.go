package perspector_test

// The parallel scoring engine's hard guarantee: every result is
// bit-identical to the serial path at any worker count, and scores from a
// warm on-disk measurement cache are bit-identical to a cold simulation.
// These tests pin both properties for all four scores over all six stock
// suites.

import (
	"runtime"
	"testing"

	"perspector"
	"perspector/internal/cache"
)

// determinismConfig is a reduced-budget configuration: large enough that
// every counter carries signal (so all four scores exercise their full
// code paths), small enough that measuring all six suites four times
// stays test-sized.
func determinismConfig() perspector.Config {
	cfg := perspector.DefaultConfig()
	cfg.Instructions = 40_000
	cfg.Samples = 50
	return cfg
}

// scoreAllSuites measures the six stock suites and compares them under
// joint normalization, exactly as the CLI's compare command does.
func scoreAllSuites(t *testing.T, cfg perspector.Config) []perspector.Scores {
	t.Helper()
	ms, err := perspector.MeasureAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scores, err := perspector.Compare(ms, perspector.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return scores
}

// requireIdenticalScores compares two score sets bit-for-bit: float64
// equality, not tolerance. Any reassociation of a parallel reduction
// shows up here.
func requireIdenticalScores(t *testing.T, label string, want, got []perspector.Scores) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d suites vs %d", label, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("%s: suite %s:\n  want %+v\n  got  %+v", label, want[i].Suite, want[i], got[i])
		}
	}
}

func TestScoreDeterminismAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("measures all six suites several times")
	}
	cfg := determinismConfig()

	prev := perspector.SetWorkers(1)
	defer perspector.SetWorkers(prev)
	serial := scoreAllSuites(t, cfg)

	counts := []int{2, runtime.NumCPU()}
	for _, w := range counts {
		perspector.SetWorkers(w)
		requireIdenticalScores(t, "workers="+itoa(w), serial, scoreAllSuites(t, cfg))
	}
}

func TestScoreDeterminismColdVsWarmCache(t *testing.T) {
	if testing.Short() {
		t.Skip("measures all six suites twice")
	}
	cfg := determinismConfig()
	st, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := perspector.DefaultOptions()

	run := func() []perspector.Scores {
		var ms []*perspector.Measurement
		for _, s := range perspector.StockSuites(cfg) {
			m, err := st.Measure(s, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ms = append(ms, m)
		}
		scores, err := perspector.Compare(ms, opts)
		if err != nil {
			t.Fatal(err)
		}
		return scores
	}

	cold := run()
	if h, m := st.Hits(), st.Misses(); h != 0 || m != 6 {
		t.Fatalf("cold pass: %d hits, %d misses; want 0/6", h, m)
	}
	warm := run()
	if h, m := st.Hits(), st.Misses(); h != 6 || m != 6 {
		t.Fatalf("warm pass: %d hits, %d misses total; want 6/6", h, m)
	}
	requireIdenticalScores(t, "cold vs warm cache", cold, warm)

	// And the cache must be transparent: direct simulation under the same
	// config produces the same bits as the cache round-trip.
	direct := scoreAllSuites(t, cfg)
	requireIdenticalScores(t, "direct vs cached", direct, cold)
}

// itoa avoids importing strconv for two call sites.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
