// Command figures regenerates every figure and result of the paper
// "Perspector: Benchmarking Benchmark Suites" (DATE 2023) on the
// simulated substrate.
//
// Usage:
//
//	figures -fig 3a          # one figure: 1, 2, 3a, 3b, 3c, 4, 5, 6
//	figures -subset          # §IV-C subset generation (SPEC'17 43→8)
//	figures -stability       # run-to-run score variation across seeds
//	figures -all             # everything
//	figures -instr 400000 -samples 100 -seed 2023
//
// The figure *data* is computed by internal/figdata (unit-tested); this
// command only renders it as text: score tables for Fig. 3, projected
// coordinates for Figs. 4/6, and sparkline curves for Figs. 1/5.
//
// Measurement flags, caching, -timeout and Ctrl-C handling are the
// shared internal/cli driver — identical to the perspector command.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"perspector"
	"perspector/internal/cli"
	"perspector/internal/figdata"
)

func main() {
	var (
		fig       = flag.String("fig", "", "figure to regenerate: 1, 2, 3a, 3b, 3c, 4, 5, 6")
		subset    = flag.Bool("subset", false, "run the §IV-C subset generation experiment")
		stability = flag.Bool("stability", false, "report score variation across 3 simulation seeds")
		all       = flag.Bool("all", false, "regenerate everything")
		csvDir    = flag.String("csv", "", "also write each figure's data as CSV into this directory")
	)
	shared := cli.AddFlags(flag.CommandLine)
	flag.Parse()

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
	}
	d, err := shared.NewDriver()
	if err != nil {
		fatal(err)
	}
	r := &runner{d: d, cfg: shared.Config(), csvDir: *csvDir}
	switch {
	case *all:
		for _, f := range []string{"1", "2", "3a", "3b", "3c", "4", "5", "6"} {
			if err == nil {
				err = r.figure(f)
			}
		}
		if err == nil {
			err = r.subset()
		}
	case *subset:
		err = r.subset()
	case *stability:
		err = r.stability()
	case *fig != "":
		err = r.figure(*fig)
	default:
		flag.Usage()
		os.Exit(2)
	}
	d.Close()
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}

// runner caches the (expensive) suite measurements across figures, both
// in memory (across figures of one invocation) and, when -cache-dir is
// set, on disk through the driver's cache store (across invocations).
type runner struct {
	d      *cli.Driver
	cfg    perspector.Config
	csvDir string
	meas   []*perspector.Measurement
}

// writeCSV writes rows (first row = header) to <csvDir>/<name>.csv when
// -csv is set; otherwise it is a no-op.
func (r *runner) writeCSV(name string, rows [][]string) error {
	if r.csvDir == "" {
		return nil
	}
	path := filepath.Join(r.csvDir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	fmt.Printf("(wrote %s)\n", path)
	return w.Error()
}

func (r *runner) measurements() ([]*perspector.Measurement, error) {
	if r.meas == nil {
		// Per-suite fan-out through the driver; results keep paper order,
		// so downstream scores match perspector.MeasureAll exactly.
		ms, err := r.d.MeasureSuites(perspector.StockSuites(r.cfg))
		if err != nil {
			return nil, err
		}
		r.meas = ms
	}
	return r.meas, nil
}

func (r *runner) byName(name string) (*perspector.Measurement, error) {
	ms, err := r.measurements()
	if err != nil {
		return nil, err
	}
	for _, m := range ms {
		if m.Suite == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("suite %q not measured", name)
}

func (r *runner) figure(f string) error {
	switch f {
	case "1":
		return r.fig1()
	case "2":
		return r.fig2()
	case "3a":
		return r.fig3("all")
	case "3b":
		return r.fig3("llc")
	case "3c":
		return r.fig3("tlb")
	case "4":
		return r.fig4()
	case "5":
		return r.fig5()
	case "6":
		return r.fig6()
	default:
		return fmt.Errorf("unknown figure %q", f)
	}
}

func (r *runner) fig3(group string) error {
	ms, err := r.measurements()
	if err != nil {
		return err
	}
	opts := perspector.DefaultOptions()
	counters, err := perspector.EventGroup(group)
	if err != nil {
		return err
	}
	opts.Counters = counters
	scores, err := perspector.CompareContext(r.d.Context(), ms, opts)
	if err != nil {
		return err
	}
	fmt.Printf("\n=== Fig. 3%s: Perspector scores (%s events) ===\n",
		map[string]string{"all": "a", "llc": "b", "tlb": "c"}[group], group)
	cli.ScoreHeader(os.Stdout)
	for _, s := range scores {
		cli.ScoreRow(os.Stdout, s)
	}
	rows := [][]string{{"suite", "cluster", "trend", "coverage", "spread"}}
	for _, s := range scores {
		rows = append(rows, []string{s.Suite,
			fmtF(s.Cluster), fmtF(s.Trend), fmtF(s.Coverage), fmtF(s.Spread)})
	}
	return r.writeCSV("fig3"+map[string]string{"all": "a", "llc": "b", "tlb": "c"}[group], rows)
}

// fmtF formats a float for CSV output.
func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', 10, 64) }

func (r *runner) fig1() error {
	sgx, err := r.byName("sgxgauge")
	if err != nil {
		return err
	}
	series, err := figdata.Fig1(sgx, 10, 0.1)
	if err != nil {
		return err
	}
	fmt.Println("\n=== Fig. 1: normalization of the LLC-load-miss trend ===")
	for _, s := range series {
		fmt.Printf("%-20s raw[min %8.0f max %8.0f len %d]  normalized: %s\n",
			s.Workload, s.RawMin, s.RawMax, s.RawLen, sparkline(s.Normalized))
	}
	fmt.Println("(normalized series are event-CDFs in [0,100] over 11 time percentiles)")
	rows := [][]string{{"workload", "percentile", "cdf"}}
	for _, s := range series {
		for i, v := range s.Normalized {
			pct := 100 * float64(i) / float64(len(s.Normalized)-1)
			rows = append(rows, []string{s.Workload, fmtF(pct), fmtF(v)})
		}
	}
	return r.writeCSV("fig1", rows)
}

func (r *runner) fig2() error {
	res, err := figdata.Fig2(r.cfg.Seed, perspector.DefaultOptions())
	if err != nil {
		return err
	}
	fmt.Println("\n=== Fig. 2: coverage vs spread ===")
	fmt.Printf("suite WA (outlier-inflated): coverage %.5f  spread %.4f\n", res.CoverageA, res.SpreadA)
	fmt.Printf("suite WB (uniformly filled): coverage %.5f  spread %.4f\n", res.CoverageB, res.SpreadB)
	fmt.Println("(WA's outliers inflate variance-based coverage; only the spread score exposes the gap)")
	return nil
}

func (r *runner) fig4() error {
	fmt.Println("\n=== Fig. 4: clustering in Nbench and SGXGauge (first two PCs) ===")
	for _, name := range []string{"nbench", "sgxgauge"} {
		m, err := r.byName(name)
		if err != nil {
			return err
		}
		points, err := figdata.Fig4(m, 1)
		if err != nil {
			return err
		}
		fmt.Printf("\n%s:\n", name)
		for _, p := range points {
			fmt.Printf("  %-28s PC1 %8.4f  PC2 %8.4f  cluster %d\n",
				p.Workload, p.PC1, p.PC2, p.Cluster)
		}
		rows := [][]string{{"workload", "pc1", "pc2", "cluster"}}
		for _, p := range points {
			rows = append(rows, []string{p.Workload, fmtF(p.PC1), fmtF(p.PC2),
				strconv.Itoa(p.Cluster)})
		}
		if err := r.writeCSV("fig4_"+name, rows); err != nil {
			return err
		}
	}
	return nil
}

func (r *runner) fig5() error {
	fmt.Println("\n=== Fig. 5: trend of LLC misses, Nbench vs SPEC'17 ===")
	for _, name := range []string{"nbench", "spec17"} {
		m, err := r.byName(name)
		if err != nil {
			return err
		}
		curves, err := figdata.Fig5(m, 4, 40, 0.1)
		if err != nil {
			return err
		}
		fmt.Printf("\n%s:\n", name)
		rows := [][]string{{"workload", "percentile", "cdf"}}
		for _, c := range curves {
			fmt.Printf("  %-24s %s\n", c.Workload, sparkline(c.Curve))
			for i, v := range c.Curve {
				pct := 100 * float64(i) / float64(len(c.Curve)-1)
				rows = append(rows, []string{c.Workload, fmtF(pct), fmtF(v)})
			}
		}
		if err := r.writeCSV("fig5_"+name, rows); err != nil {
			return err
		}
	}
	return nil
}

func (r *runner) fig6() error {
	lm, err := r.byName("lmbench")
	if err != nil {
		return err
	}
	sp, err := r.byName("spec17")
	if err != nil {
		return err
	}
	res, err := figdata.Fig6(lm, sp)
	if err != nil {
		return err
	}
	fmt.Println("\n=== Fig. 6: PCA coverage of LMbench vs SPEC'17 ===")
	fmt.Printf("lmbench  PC1 span %.4f  PC2 span %.4f\n", res.SpanA1, res.SpanA2)
	fmt.Printf("spec17   PC1 span %.4f  PC2 span %.4f\n", res.SpanB1, res.SpanB2)
	fmt.Println("\nlmbench points:")
	for _, p := range res.A {
		fmt.Printf("  %-28s %8.4f %8.4f\n", p.Workload, p.PC1, p.PC2)
	}
	fmt.Println("\nspec17 points:")
	for _, p := range res.B {
		fmt.Printf("  %-28s %8.4f %8.4f\n", p.Workload, p.PC1, p.PC2)
	}
	rows := [][]string{{"suite", "workload", "pc1", "pc2"}}
	for _, p := range res.A {
		rows = append(rows, []string{"lmbench", p.Workload, fmtF(p.PC1), fmtF(p.PC2)})
	}
	for _, p := range res.B {
		rows = append(rows, []string{"spec17", p.Workload, fmtF(p.PC1), fmtF(p.PC2)})
	}
	return r.writeCSV("fig6", rows)
}

func (r *runner) subset() error {
	sp, err := r.byName("spec17")
	if err != nil {
		return err
	}
	res, err := perspector.GenerateSubset(sp, perspector.DefaultOptions(),
		perspector.DefaultSubsetOptions(8))
	if err != nil {
		return err
	}
	fmt.Println("\n=== §IV-C: SPEC'17 subset generation via LHS (43 → 8) ===")
	fmt.Println("selected:", strings.Join(res.Names, ", "))
	fmt.Printf("%-10s %12s %12s %12s %12s\n", "", "cluster", "trend", "coverage", "spread")
	fmt.Printf("%-10s %12.4f %12.2f %12.5f %12.4f\n", "full",
		res.Full.Cluster, res.Full.Trend, res.Full.Coverage, res.Full.Spread)
	fmt.Printf("%-10s %12.4f %12.2f %12.5f %12.4f\n", "subset",
		res.Subset.Cluster, res.Subset.Trend, res.Subset.Coverage, res.Subset.Spread)
	fmt.Printf("mean relative deviation: %.2f%% (paper: 6.53%%)\n", 100*res.Deviation)
	return nil
}

// stability measures every suite under 3 seeds and prints mean ± sd per
// score — the run-to-run variation a sound comparison should disclose.
func (r *runner) stability() error {
	const seeds = 3
	fmt.Printf("\n=== score stability across %d simulation seeds ===\n", seeds)
	fmt.Printf("%-10s %16s %16s %18s %16s\n", "suite",
		"cluster", "trend", "coverage", "spread")
	for _, name := range []string{"parsec", "spec17", "ligra", "lmbench", "nbench", "sgxgauge"} {
		runs, err := r.d.MeasureSeeds(name, seeds)
		if err != nil {
			return err
		}
		st, err := perspector.ScoreStability(runs, perspector.DefaultOptions())
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %9.4f ± %-5.4f %9.2f ± %-5.2f %10.5f ± %-7.5f %8.4f ± %-6.4f\n",
			name,
			st.Mean.Cluster, st.StdDev.Cluster,
			st.Mean.Trend, st.StdDev.Trend,
			st.Mean.Coverage, st.StdDev.Coverage,
			st.Mean.Spread, st.StdDev.Spread)
	}
	return nil
}

// sparkline renders values in [0,100] as a unicode mini-chart.
func sparkline(vals []float64) string {
	const ramp = "▁▂▃▄▅▆▇█"
	var sb strings.Builder
	for _, v := range vals {
		idx := int(v / 100 * 7.99)
		if idx < 0 {
			idx = 0
		}
		if idx > 7 {
			idx = 7
		}
		sb.WriteRune([]rune(ramp)[idx])
	}
	return sb.String()
}
