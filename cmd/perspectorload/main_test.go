package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"testing"
	"time"

	"perspector/internal/fleet"
	"perspector/internal/jobs"
	"perspector/internal/server"
	"perspector/internal/store"
)

// startFleet assembles a 3-node in-process fleet — coordinator plus two
// engine workers — and returns the coordinator's base URL.
func startFleet(t *testing.T, maxQueue int, quota *fleet.TenantLimiter) string {
	t.Helper()
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))

	coordStore, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	coord := fleet.NewCoordinator(fleet.CoordinatorOptions{Store: coordStore, Log: quiet})
	queue := jobs.New(jobs.RemoteRunner(coord), jobs.Options{
		Workers: 16, MaxQueue: maxQueue, Store: coordStore, Log: quiet,
	})
	srv := server.New(server.Config{
		Queue: queue, Store: coordStore, Log: quiet,
		Role: "coordinator", NodeID: "c0", Coordinator: coord, Quota: quota,
	})
	ts := httptest.NewServer(srv.Handler())

	ctx, cancel := context.WithCancel(context.Background())
	workerDone := make(chan error, 2)
	for i := 0; i < 2; i++ {
		st, err := store.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		wq := jobs.New(jobs.EngineRunner(nil), jobs.Options{
			Workers: 2, MaxQueue: 64, Store: st, Log: quiet,
		})
		w, err := fleet.NewWorker(fleet.WorkerOptions{
			Coordinator: ts.URL, NodeID: fmt.Sprintf("w%d", i+1),
			Capacity: 2, Queue: wq, Store: st, Log: quiet,
			PullWait: 200 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		go func() { workerDone <- w.Run(ctx) }()
		t.Cleanup(func() {
			drainCtx, dc := context.WithTimeout(context.Background(), 10*time.Second)
			defer dc()
			wq.Drain(drainCtx)
		})
	}
	t.Cleanup(func() {
		cancel()
		for i := 0; i < 2; i++ {
			select {
			case err := <-workerDone:
				if err != nil && !errors.Is(err, context.Canceled) {
					t.Errorf("worker run: %v", err)
				}
			case <-time.After(15 * time.Second):
				t.Error("worker did not drain")
			}
		}
		drainCtx, dc := context.WithTimeout(context.Background(), 10*time.Second)
		defer dc()
		queue.Drain(drainCtx)
		ts.Close()
		coord.Close()
	})

	deadline := time.Now().Add(10 * time.Second)
	for coord.Peers() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("workers did not join the fleet")
		}
		time.Sleep(10 * time.Millisecond)
	}
	return ts.URL
}

// metricValue extracts the first value of a /metrics series matching re.
func metricValue(t *testing.T, url string, re *regexp.Regexp) (float64, bool) {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	m := re.FindSubmatch(raw)
	if m == nil {
		return 0, false
	}
	v, err := strconv.ParseFloat(string(m[1]), 64)
	if err != nil {
		t.Fatalf("unparseable metric value %q", m[1])
	}
	return v, true
}

// TestLoadAgainstFleet is the load-generator acceptance run: 1000
// concurrent submitters against a 3-node fleet, with per-tenant quotas
// tight enough to throttle and a queue small enough to backpressure.
// Nothing accepted may be lost, and both rejection classes must be
// visible on the coordinator's /metrics.
func TestLoadAgainstFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short mode")
	}
	url := startFleet(t, 8, fleet.NewTenantLimiter(50, 100))

	o := &loadOptions{
		addr:        url,
		concurrency: 1000,
		total:       3000,
		distinct:    64,
		tenants:     4,
		instr:       20000,
		samples:     10,
		timeout:     2 * time.Minute,
	}
	ctx, cancel := context.WithTimeout(context.Background(), o.timeout)
	defer cancel()
	rep, err := runLoad(ctx, o, &http.Client{Timeout: time.Minute})
	if err != nil {
		t.Fatalf("runLoad: %v (report %+v)", err, rep)
	}

	if rep.Submitted != int64(o.total) {
		t.Errorf("submitted %d, want %d", rep.Submitted, o.total)
	}
	if got := rep.Accepted + rep.Deduped + rep.Quota429 + rep.Backpressure + rep.Errors; got != rep.Submitted {
		t.Errorf("outcome sum %d != submitted %d (%+v)", got, rep.Submitted, rep)
	}
	if rep.Errors != 0 {
		t.Errorf("%d transport errors (%+v)", rep.Errors, rep)
	}
	if rep.Lost != 0 {
		t.Errorf("%d accepted jobs lost (%+v)", rep.Lost, rep)
	}
	if rep.Accepted == 0 {
		t.Error("no submissions accepted")
	}
	// 3000 submissions over 64 distinct shapes: server-side dedup must
	// fold a large share of the admitted ones.
	if rep.Deduped == 0 {
		t.Errorf("no fleet-wide dedup observed (%+v)", rep)
	}
	if rep.Quota429 == 0 {
		t.Errorf("tight tenant quota produced no 429s (%+v)", rep)
	}
	if rep.Backpressure == 0 {
		t.Errorf("8-deep queue under 1000 submitters produced no backpressure 429s (%+v)", rep)
	}

	// The same rejections must be visible on the coordinator's /metrics.
	quota, ok := metricValue(t, url, regexp.MustCompile(`perspectord_quota_rejections_total\{tenant="tenant-0"\} (\d+)`))
	if !ok || quota == 0 {
		t.Errorf("quota rejections for tenant-0 missing from /metrics (found=%v value=%g)", ok, quota)
	}
	bp, ok := metricValue(t, url, regexp.MustCompile(`perspectord_backpressure_rejections_total (\d+)`))
	if !ok {
		t.Error("backpressure counter missing from /metrics")
	} else if int64(bp) != rep.Backpressure {
		t.Errorf("/metrics backpressure %g != report %d", bp, rep.Backpressure)
	}
	nodes, ok := metricValue(t, url, regexp.MustCompile(`perspectord_fleet_nodes (\d+)`))
	if !ok || nodes != 2 {
		t.Errorf("fleet nodes gauge = %g (found=%v), want 2", nodes, ok)
	}
}

// TestParseFlags pins flag validation.
func TestParseFlags(t *testing.T) {
	if _, err := parseFlags([]string{"-c", "0"}); err == nil {
		t.Error("zero concurrency accepted")
	}
	o, err := parseFlags([]string{"-addr", "http://x:1", "-c", "7", "-n", "9"})
	if err != nil {
		t.Fatal(err)
	}
	if o.addr != "http://x:1" || o.concurrency != 7 || o.total != 9 {
		t.Errorf("parsed %+v", o)
	}
}
