// Command perspectorload is a load generator for perspectord: many
// concurrent submitters firing score/compare jobs at one endpoint
// (single node or fleet coordinator), then verifying that every
// accepted job reached a terminal result — the "zero lost jobs" check
// behind the fleet's admission-control and rebalancing claims.
//
//	perspectorload -addr http://localhost:8080 -c 1000 -n 5000 -distinct 8
//
// The tool reports accepted vs deduplicated submissions, 429s split
// into per-tenant quota and queue-full backpressure, and how many
// accepted jobs never produced a result (lost). The exit status is
// nonzero when jobs were lost or transport errors occurred.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

func main() {
	o, err := parseFlags(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "perspectorload:", err)
		os.Exit(2)
	}
	ctx, cancel := context.WithTimeout(context.Background(), o.timeout)
	defer cancel()
	rep, err := runLoad(ctx, o, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perspectorload:", err)
		os.Exit(2)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(rep)
	if rep.Lost > 0 || rep.Errors > 0 {
		os.Exit(1)
	}
}

type loadOptions struct {
	addr        string
	concurrency int
	total       int
	distinct    int
	tenants     int
	instr       uint64
	samples     int
	timeout     time.Duration
}

func parseFlags(args []string) (*loadOptions, error) {
	fs := flag.NewFlagSet("perspectorload", flag.ContinueOnError)
	o := &loadOptions{}
	fs.StringVar(&o.addr, "addr", "http://localhost:8080", "perspectord base URL (fleet coordinator or single node)")
	fs.IntVar(&o.concurrency, "c", 1000, "concurrent submitters")
	fs.IntVar(&o.total, "n", 5000, "total submissions across all submitters")
	fs.IntVar(&o.distinct, "distinct", 8, "distinct request shapes (the rest deduplicate server-side)")
	fs.IntVar(&o.tenants, "tenants", 1, "distinct X-Tenant values to submit under")
	fs.Uint64Var(&o.instr, "instr", 20000, "simulated instructions per workload")
	fs.IntVar(&o.samples, "samples", 10, "samples per workload")
	fs.DurationVar(&o.timeout, "timeout", 5*time.Minute, "overall deadline")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if o.concurrency < 1 || o.total < 1 || o.distinct < 1 || o.tenants < 1 {
		return nil, fmt.Errorf("-c, -n, -distinct and -tenants must all be >= 1")
	}
	return o, nil
}

// report is the run summary, printed as JSON.
type report struct {
	Submitted    int64   `json:"submitted"`
	Accepted     int64   `json:"accepted"`
	Deduped      int64   `json:"deduped"`
	Quota429     int64   `json:"quota_429"`
	Backpressure int64   `json:"backpressure_429"`
	Errors       int64   `json:"errors"`
	Jobs         int     `json:"jobs"`
	Lost         int     `json:"lost"`
	Elapsed      float64 `json:"elapsed_seconds"`
}

// requestBody renders the i-th distinct submission. The first six
// shapes are the stock suites; further shapes re-score them under
// shifted seeds, so every shape is a distinct content key.
func requestBody(o *loadOptions, i int) []byte {
	suites := []string{"parsec", "spec17", "ligra", "lmbench", "nbench", "sgxgauge"}
	body := map[string]any{
		"kind":   "score",
		"suites": []string{suites[i%len(suites)]},
		"config": map[string]any{
			"instructions": o.instr,
			"samples":      o.samples,
			"seed":         2023 + i/len(suites),
		},
	}
	data, _ := json.Marshal(body)
	return data
}

// runLoad fires o.total submissions from o.concurrency goroutines, then
// waits for every accepted job's terminal result. client nil uses a
// default with a generous timeout (result waits long-poll).
func runLoad(ctx context.Context, o *loadOptions, client *http.Client) (report, error) {
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Minute}
	}
	bodies := make([][]byte, o.distinct)
	for i := range bodies {
		bodies[i] = requestBody(o, i)
	}

	var rep report
	var mu sync.Mutex
	jobIDs := make(map[string]bool)
	var next atomic.Int64
	start := time.Now()

	var wg sync.WaitGroup
	for c := 0; c < o.concurrency; c++ {
		wg.Add(1)
		go func(submitter int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= o.total || ctx.Err() != nil {
					return
				}
				atomic.AddInt64(&rep.Submitted, 1)
				req, err := http.NewRequestWithContext(ctx, http.MethodPost,
					o.addr+"/api/v1/jobs", bytes.NewReader(bodies[i%o.distinct]))
				if err != nil {
					atomic.AddInt64(&rep.Errors, 1)
					continue
				}
				req.Header.Set("Content-Type", "application/json")
				req.Header.Set("X-Tenant", fmt.Sprintf("tenant-%d", submitter%o.tenants))
				resp, err := client.Do(req)
				if err != nil {
					atomic.AddInt64(&rep.Errors, 1)
					continue
				}
				raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusAccepted, http.StatusOK:
					var sub struct {
						Job struct {
							ID string `json:"id"`
						} `json:"job"`
						Deduped bool `json:"deduped"`
					}
					if err := json.Unmarshal(raw, &sub); err != nil || sub.Job.ID == "" {
						atomic.AddInt64(&rep.Errors, 1)
						continue
					}
					if sub.Deduped {
						atomic.AddInt64(&rep.Deduped, 1)
					} else {
						atomic.AddInt64(&rep.Accepted, 1)
					}
					mu.Lock()
					jobIDs[sub.Job.ID] = true
					mu.Unlock()
				case http.StatusTooManyRequests:
					// The server's two 429 sources phrase their errors
					// differently; the quota one names the tenant.
					if strings.Contains(string(raw), "quota") {
						atomic.AddInt64(&rep.Quota429, 1)
					} else {
						atomic.AddInt64(&rep.Backpressure, 1)
					}
				default:
					atomic.AddInt64(&rep.Errors, 1)
				}
			}
		}(c)
	}
	wg.Wait()

	// Every accepted or deduplicated submission resolved to a job; each
	// must reach a terminal result. Lost = it did not.
	rep.Jobs = len(jobIDs)
	sem := make(chan struct{}, 64)
	var lost atomic.Int64
	for id := range jobIDs {
		wg.Add(1)
		sem <- struct{}{}
		go func(id string) {
			defer wg.Done()
			defer func() { <-sem }()
			if !waitResult(ctx, client, o.addr, id) {
				lost.Add(1)
			}
		}(id)
	}
	wg.Wait()
	rep.Lost = int(lost.Load())
	rep.Elapsed = time.Since(start).Seconds()
	if ctx.Err() != nil {
		return rep, fmt.Errorf("deadline exceeded with %d jobs unresolved", rep.Lost)
	}
	return rep, nil
}

// waitResult long-polls one job until it has a ScoreSet.
func waitResult(ctx context.Context, client *http.Client, addr, id string) bool {
	for ctx.Err() == nil {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			addr+"/api/v1/jobs/"+id+"/result?wait=1", nil)
		if err != nil {
			return false
		}
		resp, err := client.Do(req)
		if err != nil {
			return false
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			return true
		case http.StatusAccepted:
			continue // still running; poll again
		default:
			return false // failed, cancelled, or unknown: the job is lost
		}
	}
	return false
}
