// Command benchjson runs the simulator benchmark set under the testing
// package's benchmark driver and writes the results as machine-readable
// JSON. The committed BENCH_simulator.json at the repository root is the
// instructions/sec trajectory of the hot-loop work: regenerate it on the
// same class of machine with
//
//	go run ./cmd/benchjson -out BENCH_simulator.json
//
// and compare simulated_instr_per_sec across commits. The benchmark
// bodies mirror BenchmarkSimulateSuite / BenchmarkSimulateWorkload
// (suite and per-workload level) and the BenchmarkCacheAccess /
// BenchmarkTLBTranslate / BenchmarkMachineStep microbenchmarks
// (component level), so a regression can be localized to the layer that
// caused it; SimulateSuiteTotalsOnly measures the counters-only fast
// path against the full sampled run, and StreamIngest measures the
// streaming instruction-log reader (parsed records per second).
// FullRescore and IncrRescore are the incremental-scoring A/B pair: the
// cost of batch-scoring a 64-workload measurement from scratch versus
// appending one sample chunk to it and rescoring through the
// incremental engine (the perspectord streaming-score hot path).
//
// Each run also appends one line to BENCH_history.jsonl (disable with
// -history ""): the same report plus the git commit, so the repository
// accumulates an instr/sec trajectory across commits instead of only
// the latest snapshot.
//
// With -check <snapshot>, the run compares its own suite-level
// simulated_instr_per_sec against the snapshot's and exits non-zero on a
// regression beyond -check-tolerance. The suite benchmark keeps the best
// of -check-rounds runs: scheduling noise on shared runners only ever
// slows a run down, so the fastest observation is the least contaminated
// one.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"context"

	perspector "perspector"
	"perspector/internal/buildinfo"
	"perspector/internal/metric"
	"perspector/internal/perf"
	"perspector/internal/rng"
	"perspector/internal/trace"
	"perspector/internal/uarch"
)

// result is one benchmark's measurement.
type result struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
	// Iterations is the b.N the driver settled on.
	Iterations int `json:"iterations"`
	// SimulatedInstrPerOp is how many simulated instructions one op
	// executes (0 for benchmarks that are not instruction-granular).
	SimulatedInstrPerOp uint64 `json:"simulated_instr_per_op,omitempty"`
	// SimulatedInstrPerSec is the headline throughput figure.
	SimulatedInstrPerSec float64 `json:"simulated_instr_per_sec,omitempty"`
}

type report struct {
	GeneratedAt time.Time `json:"generated_at"`
	GitSHA      string    `json:"git_sha,omitempty"`
	GoVersion   string    `json:"go_version"`
	GOOS        string    `json:"goos"`
	GOARCH      string    `json:"goarch"`
	Benchmarks  []result  `json:"benchmarks"`
}

// gitSHA resolves the current commit: the VCS stamp when the build
// recorded one (go build), falling back to asking git (go run strips the
// stamp). A repository-less run just yields "".
func gitSHA() string {
	if rev := buildinfo.Read().Revision; rev != "" {
		return rev
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

func main() {
	testing.Init() // register test.* flags so benchtime can be set below
	out := flag.String("out", "BENCH_simulator.json", "output path for the latest snapshot")
	history := flag.String("history", "BENCH_history.jsonl", "append the run to this JSONL history (empty disables)")
	benchtime := flag.Duration("benchtime", time.Second, "minimum run time per benchmark")
	check := flag.String("check", "", "compare suite-level instr/sec against this committed snapshot and fail on regression")
	checkTolerance := flag.Float64("check-tolerance", 0.10, "relative regression allowed by -check")
	checkRounds := flag.Int("check-rounds", 3, "suite benchmark repetitions; the best round is kept")
	flag.Parse()
	// The driver reads the package-level benchtime; there is no public
	// per-run knob, so set it the way `go test -benchtime` would.
	if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
		fatal(err)
	}
	rounds := 1
	if *check != "" && *checkRounds > 1 {
		rounds = *checkRounds
	}

	rep := report{
		GeneratedAt: time.Now().UTC().Truncate(time.Second),
		GitSHA:      gitSHA(),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
	}
	for _, bench := range []struct {
		name       string
		instrPerOp func() uint64
		rounds     int
		body       func(b *testing.B)
	}{
		{"SimulateSuite", suiteInstr, rounds, benchSimulateSuite},
		{"SimulateSuiteTotalsOnly", suiteInstr, 1, benchSimulateSuiteTotalsOnly},
		{"SimulateWorkload", workloadInstr, 1, benchSimulateWorkload},
		{"StreamIngest", streamInstr, 1, benchStreamIngest},
		{"FullRescore", nil, 1, benchFullRescore},
		{"IncrRescore", nil, 1, benchIncrRescore},
		{"MachineStep", func() uint64 { return 1 }, 1, benchMachineStep},
		{"CacheAccess", nil, 1, benchCacheAccess},
		{"TLBTranslate", nil, 1, benchTLBTranslate},
	} {
		var r testing.BenchmarkResult
		for round := 0; round < bench.rounds; round++ {
			got := testing.Benchmark(bench.body)
			if got.N == 0 {
				fmt.Fprintf(os.Stderr, "benchjson: %s did not run (benchmark failed?)\n", bench.name)
				os.Exit(1)
			}
			if round == 0 || nsPerOp(got) < nsPerOp(r) {
				r = got
			}
		}
		res := result{
			Name:       bench.name,
			NsPerOp:    nsPerOp(r),
			Iterations: r.N,
		}
		if bench.instrPerOp != nil {
			res.SimulatedInstrPerOp = bench.instrPerOp()
			res.SimulatedInstrPerSec = float64(res.SimulatedInstrPerOp) / (res.NsPerOp / 1e9)
		}
		rep.Benchmarks = append(rep.Benchmarks, res)
		fmt.Printf("%-24s %12.1f ns/op", res.Name, res.NsPerOp)
		if res.SimulatedInstrPerSec > 0 {
			fmt.Printf("  %.3g simulated instr/sec", res.SimulatedInstrPerSec)
		}
		fmt.Println()
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	if *history != "" {
		if err := appendHistory(*history, rep); err != nil {
			fatal(err)
		}
	}
	if *check != "" {
		if err := checkRegression(*check, rep, *checkTolerance); err != nil {
			fatal(err)
		}
	}
}

func nsPerOp(r testing.BenchmarkResult) float64 {
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

// appendHistory adds the run as one JSON line to the history file.
func appendHistory(path string, rep report) error {
	line, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(append(line, '\n'))
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// suiteLevel extracts the SimulateSuite throughput of a report.
func suiteLevel(rep report) (float64, error) {
	for _, r := range rep.Benchmarks {
		if r.Name == "SimulateSuite" {
			return r.SimulatedInstrPerSec, nil
		}
	}
	return 0, fmt.Errorf("no SimulateSuite entry")
}

// checkRegression compares the run's suite-level throughput against the
// committed snapshot at path.
func checkRegression(path string, rep report, tolerance float64) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var committed report
	if err := json.Unmarshal(buf, &committed); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	want, err := suiteLevel(committed)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	got, err := suiteLevel(rep)
	if err != nil {
		return err
	}
	floor := want * (1 - tolerance)
	if got < floor {
		return fmt.Errorf("suite-level regression: %.3g simulated instr/sec < %.3g (committed %.3g − %.0f%%)",
			got, floor, want, 100*tolerance)
	}
	fmt.Printf("check: %.3g simulated instr/sec ≥ %.3g (committed %.3g − %.0f%%)\n",
		got, floor, want, 100*tolerance)
	return nil
}

// benchSimulateSuite mirrors BenchmarkSimulateSuite: the Nbench suite end
// to end at the paper's full configuration.
func benchSimulateSuite(b *testing.B) {
	runSuite(b, perspector.DefaultConfig())
}

// benchSimulateSuiteTotalsOnly is the same suite through the
// counters-only fast path: no sampled series, totals bit-identical.
func benchSimulateSuiteTotalsOnly(b *testing.B) {
	cfg := perspector.DefaultConfig()
	cfg.TotalsOnly = true
	runSuite(b, cfg)
}

func runSuite(b *testing.B, cfg perspector.Config) {
	s, err := perspector.SuiteByName("nbench", cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := perspector.Measure(s, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSimulateWorkload measures one workload — the first Nbench kernel —
// so per-core throughput is separable from the sharded suite number.
func benchSimulateWorkload(b *testing.B) {
	cfg := perspector.DefaultConfig()
	s, err := perspector.SuiteByName("nbench", cfg)
	if err != nil {
		b.Fatal(err)
	}
	s.Specs = s.Specs[:1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := perspector.Measure(s, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// streamBlock renders ~1 MiB of instruction-log text cycling through
// all five record kinds, and reports how many records it holds. The
// block is what one StreamIngest op parses.
func streamBlock() ([]byte, int) {
	var buf []byte
	records := 0
	for i := uint64(0); len(buf) < 1<<20; i++ {
		buf = append(buf, 'A', '\n')
		buf = append(buf, 'L', ',')
		buf = strconv.AppendUint(buf, i*64%(1<<22), 10)
		buf = append(buf, '\n', 'S', ',')
		buf = strconv.AppendUint(buf, i*128%(1<<24), 10)
		buf = append(buf, '\n', 'B', ',')
		buf = strconv.AppendUint(buf, 0x400000+i%64*4, 10)
		buf = append(buf, ',', '0'+byte(i&1), '\n')
		buf = append(buf, 'Y', ',', '0', '\n')
		records += 5
	}
	return buf, records
}

// repeatReader serves block reps times — a multi-GB log without the
// multi-GB buffer, mirroring the bounded-memory test in internal/trace.
type repeatReader struct {
	block []byte
	off   int
	reps  int
}

func (r *repeatReader) Read(p []byte) (int, error) {
	if r.reps == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.block[r.off:])
	r.off += n
	if r.off == len(r.block) {
		r.off = 0
		r.reps--
	}
	return n, nil
}

// benchStreamIngest measures the streaming trace reader: one op parses
// one streamBlock through ProgramReader.NextBatch. The instr/sec figure
// is parsed log records per second — the ingest ceiling for replaying
// instruction logs through the simulator.
func benchStreamIngest(b *testing.B) {
	block, perBlock := streamBlock()
	pr := trace.NewProgramReader(&repeatReader{block: block, reps: b.N}, "bench")
	batch := make([]uarch.Instr, 4096)
	b.SetBytes(int64(len(block)))
	b.ResetTimer()
	total := 0
	for {
		n := pr.NextBatch(batch)
		total += n
		if n < len(batch) {
			break
		}
	}
	if err := pr.Err(); err != nil {
		b.Fatal(err)
	}
	if total != perBlock*b.N {
		b.Fatalf("parsed %d records, want %d", total, perBlock*b.N)
	}
}

// rescoreMeasurement fabricates the fixed 64-workload measurement the
// FullRescore/IncrRescore pair scores — the same shape bench_test.go's
// benchStreamMeasurement builds, kept in lockstep so the committed
// numbers stay comparable with `go test -bench`.
func rescoreMeasurement() *perf.SuiteMeasurement {
	src := rng.New(2023)
	sm := &perf.SuiteMeasurement{Suite: "streambench"}
	for i := 0; i < 64; i++ {
		m := perf.Measurement{Workload: fmt.Sprintf("w%02d", i)}
		m.Series.Interval = 1000
		for c := 0; c < int(perf.NumCounters); c++ {
			m.Totals[perf.Counter(c)] = uint64(src.Intn(50000))
			for s := 0; s < 64; s++ {
				m.Series.Samples[perf.Counter(c)] = append(
					m.Series.Samples[perf.Counter(c)], float64(src.Intn(2000)))
			}
		}
		sm.Workloads = append(sm.Workloads, m)
	}
	return sm
}

// benchFullRescore scores the fixed measurement from scratch every op —
// what a streaming client would pay per chunk without the incremental
// engine.
func benchFullRescore(b *testing.B) {
	sm := rescoreMeasurement()
	opts := metric.DefaultOptions()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := metric.ScoreSuites(ctx, []*perf.SuiteMeasurement{sm}, opts, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// benchIncrRescore measures the streaming steady state: the run already
// holds the measurement, one op appends a sample chunk (two series
// samples per counter) to one workload and rescores incrementally.
func benchIncrRescore(b *testing.B) {
	run, err := metric.NewIncrementalRun(
		[]*perf.SuiteMeasurement{rescoreMeasurement()}, metric.DefaultOptions(), nil)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if _, err := run.Scores(ctx); err != nil {
		b.Fatal(err)
	}
	names := make([]string, len(run.Measurement(0).Workloads))
	for i := range names {
		names[i] = run.Measurement(0).Workloads[i].Workload
	}
	src := rng.New(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tail := &perf.TimeSeries{Interval: 1000}
		for c := 0; c < int(perf.NumCounters); c++ {
			tail.Samples[perf.Counter(c)] = []float64{
				float64(src.Intn(2000)), float64(src.Intn(2000))}
		}
		if err := run.AppendSamples(0, names[i%len(names)], perf.Values{}, tail); err != nil {
			b.Fatal(err)
		}
		if _, err := run.Scores(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func streamInstr() uint64 {
	_, perBlock := streamBlock()
	return uint64(perBlock)
}

func suiteInstr() uint64 {
	cfg := perspector.DefaultConfig()
	s, err := perspector.SuiteByName("nbench", cfg)
	if err != nil {
		return 0
	}
	return cfg.Instructions * uint64(len(s.Specs))
}

func workloadInstr() uint64 {
	return perspector.DefaultConfig().Instructions
}

// strideProg mirrors the deterministic generator of the in-tree
// BenchmarkMachineStep: a fixed kind mix whose own cost is a few ALU ops,
// so the measurement isolates the machine's per-instruction step.
type strideProg struct {
	n, limit uint64
}

func (p *strideProg) Name() string { return "stride" }

func (p *strideProg) Next(in *uarch.Instr) bool {
	if p.n >= p.limit {
		return false
	}
	i := p.n
	p.n++
	switch i % 8 {
	case 0, 3:
		*in = uarch.Instr{Kind: uarch.Load, Addr: i * 24}
	case 5:
		*in = uarch.Instr{Kind: uarch.Store, Addr: i * 40}
	case 6:
		*in = uarch.Instr{Kind: uarch.Branch, PC: 0x400000 + i%32*4, Taken: i%3 != 0}
	default:
		*in = uarch.Instr{Kind: uarch.ALU}
	}
	return true
}

func (p *strideProg) Reset() { p.n = 0 }

func benchMachineStep(b *testing.B) {
	m, err := uarch.NewMachine(uarch.DefaultMachineConfig())
	if err != nil {
		b.Fatal(err)
	}
	n := uint64(b.N)
	b.ResetTimer()
	if _, err := m.Run(&strideProg{limit: n}, n); err != nil {
		b.Fatal(err)
	}
}

func benchCacheAccess(b *testing.B) {
	c, err := uarch.NewCache(uarch.CacheConfig{Name: "b", SizeB: 32 << 10, LineB: 64, Ways: 8})
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(1)
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(src.Intn(1 << 22))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&4095])
	}
}

func benchTLBTranslate(b *testing.B) {
	tlb, err := uarch.NewTLB(uarch.DefaultTLBConfig())
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(1)
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(src.Intn(1 << 30))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tlb.Translate(addrs[i&4095])
	}
}
