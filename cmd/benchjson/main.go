// Command benchjson runs the simulator benchmark set under the testing
// package's benchmark driver and writes the results as machine-readable
// JSON. The committed BENCH_simulator.json at the repository root is the
// instructions/sec trajectory of the hot-loop work: regenerate it on the
// same class of machine with
//
//	go run ./cmd/benchjson -out BENCH_simulator.json
//
// and compare simulated_instr_per_sec across commits. The benchmark
// bodies mirror BenchmarkSimulateSuite (suite level) and the
// BenchmarkCacheAccess / BenchmarkTLBTranslate / BenchmarkMachineStep
// microbenchmarks (component level), so a regression can be localized to
// the layer that caused it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	perspector "perspector"
	"perspector/internal/rng"
	"perspector/internal/uarch"
)

// result is one benchmark's measurement.
type result struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
	// Iterations is the b.N the driver settled on.
	Iterations int `json:"iterations"`
	// SimulatedInstrPerOp is how many simulated instructions one op
	// executes (0 for benchmarks that are not instruction-granular).
	SimulatedInstrPerOp uint64 `json:"simulated_instr_per_op,omitempty"`
	// SimulatedInstrPerSec is the headline throughput figure.
	SimulatedInstrPerSec float64 `json:"simulated_instr_per_sec,omitempty"`
}

type report struct {
	GeneratedAt time.Time `json:"generated_at"`
	GoVersion   string    `json:"go_version"`
	GOOS        string    `json:"goos"`
	GOARCH      string    `json:"goarch"`
	Benchmarks  []result  `json:"benchmarks"`
}

func main() {
	testing.Init() // register test.* flags so benchtime can be set below
	out := flag.String("out", "BENCH_simulator.json", "output path")
	benchtime := flag.Duration("benchtime", time.Second, "minimum run time per benchmark")
	flag.Parse()
	// The driver reads the package-level benchtime; there is no public
	// per-run knob, so set it the way `go test -benchtime` would.
	if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	rep := report{
		GeneratedAt: time.Now().UTC().Truncate(time.Second),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
	}
	for _, bench := range []struct {
		name       string
		instrPerOp func(r testing.BenchmarkResult) uint64
		body       func(b *testing.B)
	}{
		{"SimulateSuite", simulateSuiteInstr, benchSimulateSuite},
		{"MachineStep", func(r testing.BenchmarkResult) uint64 { return 1 }, benchMachineStep},
		{"CacheAccess", nil, benchCacheAccess},
		{"TLBTranslate", nil, benchTLBTranslate},
	} {
		r := testing.Benchmark(bench.body)
		if r.N == 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %s did not run (benchmark failed?)\n", bench.name)
			os.Exit(1)
		}
		res := result{
			Name:       bench.name,
			NsPerOp:    float64(r.T.Nanoseconds()) / float64(r.N),
			Iterations: r.N,
		}
		if bench.instrPerOp != nil {
			res.SimulatedInstrPerOp = bench.instrPerOp(r)
			res.SimulatedInstrPerSec = float64(res.SimulatedInstrPerOp) / (res.NsPerOp / 1e9)
		}
		rep.Benchmarks = append(rep.Benchmarks, res)
		fmt.Printf("%-14s %12.1f ns/op", res.Name, res.NsPerOp)
		if res.SimulatedInstrPerSec > 0 {
			fmt.Printf("  %.3g simulated instr/sec", res.SimulatedInstrPerSec)
		}
		fmt.Println()
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// benchSimulateSuite mirrors BenchmarkSimulateSuite: the Nbench suite end
// to end at the paper's full configuration.
func benchSimulateSuite(b *testing.B) {
	cfg := perspector.DefaultConfig()
	s, err := perspector.SuiteByName("nbench", cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := perspector.Measure(s, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func simulateSuiteInstr(testing.BenchmarkResult) uint64 {
	cfg := perspector.DefaultConfig()
	s, err := perspector.SuiteByName("nbench", cfg)
	if err != nil {
		return 0
	}
	return cfg.Instructions * uint64(len(s.Specs))
}

// strideProg mirrors the deterministic generator of the in-tree
// BenchmarkMachineStep: a fixed kind mix whose own cost is a few ALU ops,
// so the measurement isolates the machine's per-instruction step.
type strideProg struct {
	n, limit uint64
}

func (p *strideProg) Name() string { return "stride" }

func (p *strideProg) Next(in *uarch.Instr) bool {
	if p.n >= p.limit {
		return false
	}
	i := p.n
	p.n++
	switch i % 8 {
	case 0, 3:
		*in = uarch.Instr{Kind: uarch.Load, Addr: i * 24}
	case 5:
		*in = uarch.Instr{Kind: uarch.Store, Addr: i * 40}
	case 6:
		*in = uarch.Instr{Kind: uarch.Branch, PC: 0x400000 + i%32*4, Taken: i%3 != 0}
	default:
		*in = uarch.Instr{Kind: uarch.ALU}
	}
	return true
}

func (p *strideProg) Reset() { p.n = 0 }

func benchMachineStep(b *testing.B) {
	m, err := uarch.NewMachine(uarch.DefaultMachineConfig())
	if err != nil {
		b.Fatal(err)
	}
	n := uint64(b.N)
	b.ResetTimer()
	if _, err := m.Run(&strideProg{limit: n}, n); err != nil {
		b.Fatal(err)
	}
}

func benchCacheAccess(b *testing.B) {
	c, err := uarch.NewCache(uarch.CacheConfig{Name: "b", SizeB: 32 << 10, LineB: 64, Ways: 8})
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(1)
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(src.Intn(1 << 22))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&4095])
	}
}

func benchTLBTranslate(b *testing.B) {
	tlb, err := uarch.NewTLB(uarch.DefaultTLBConfig())
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(1)
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(src.Intn(1 << 30))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tlb.Translate(addrs[i&4095])
	}
}
