// Command benchjson runs the simulator benchmark set under the testing
// package's benchmark driver and writes the results as machine-readable
// JSON. The committed BENCH_simulator.json at the repository root is the
// instructions/sec trajectory of the hot-loop work: regenerate it on the
// same class of machine with
//
//	go run ./cmd/benchjson -out BENCH_simulator.json
//
// and compare simulated_instr_per_sec across commits. The benchmark
// bodies mirror BenchmarkSimulateSuite / BenchmarkSimulateWorkload
// (suite and per-workload level) and the BenchmarkCacheAccess /
// BenchmarkTLBTranslate / BenchmarkMachineStep microbenchmarks
// (component level), so a regression can be localized to the layer that
// caused it; SimulateSuiteTotalsOnly measures the counters-only fast
// path against the full sampled run, and StreamIngest measures the
// streaming instruction-log reader (parsed records per second).
// FullRescore and IncrRescore are the incremental-scoring A/B pair: the
// cost of batch-scoring a 64-workload measurement from scratch versus
// appending one sample chunk to it and rescoring through the
// incremental engine (the perspectord streaming-score hot path).
//
// Each run also appends one line to BENCH_history.jsonl (disable with
// -history ""): the same report plus the git commit, so the repository
// accumulates an instr/sec trajectory across commits instead of only
// the latest snapshot.
//
// With -check <snapshot>, the run compares its own suite-level
// simulated_instr_per_sec against the snapshot's and exits non-zero on a
// regression beyond -check-tolerance. The suite benchmark keeps the best
// of -check-rounds runs: scheduling noise on shared runners only ever
// slows a run down, so the fastest observation is the least contaminated
// one.
//
// With -check-history <jsonl>, the run is additionally gated against the
// accumulated history distribution: each instr/sec-bearing benchmark
// must not fall below a low percentile (default p10, with slack) of the
// last K runs recorded on the same machine class (goos/goarch). Unlike
// the fixed-tolerance snapshot check, this floor tracks what the machine
// class actually sustains, and it refuses to judge (inconclusive pass)
// when the history holds too few same-class runs.
//
// The compare subcommand is the paired same-moment A/B primitive the CI
// regression gate runs:
//
//	go run ./cmd/benchjson compare -a SimulateSuite -rounds 5 -out verdict.json
//
// It measures A and B back-to-back in each round (interleaved, so slow
// machine moments hit both sides of a pair), judges the best-of-N ns/op
// delta against a noise band estimated from the rounds themselves
// (internal/perfhist.Compare), writes a machine-readable Verdict, and
// exits non-zero on a statistically significant regression. With -b
// omitted, B is the same benchmark as A — a no-change self-comparison
// that must pass, which CI runs to validate the comparator itself. The
// -inject-slowdown knob multiplies B's observed ns/op to prove the gate
// fires on a real slowdown (the synthetic-regression self-test journaled
// in EXPERIMENTS.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"context"

	perspector "perspector"
	"perspector/internal/buildinfo"
	"perspector/internal/metric"
	"perspector/internal/perf"
	"perspector/internal/perfhist"
	"perspector/internal/rng"
	"perspector/internal/trace"
	"perspector/internal/uarch"
)

// The report schema is owned by internal/perfhist — Record is one run,
// Benchmark one measurement — so this producer, the perspectord history
// service, and the obscheck validator share a single codec.
type result = perfhist.Benchmark

type report = perfhist.Record

// gitSHA resolves the current commit: the VCS stamp when the build
// recorded one (go build), falling back to asking git (go run strips the
// stamp). A repository-less run just yields "".
func gitSHA() string {
	if rev := buildinfo.Read().Revision; rev != "" {
		return rev
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// benchSpec is one registered benchmark: the record mode runs all of
// them, the compare subcommand picks sides by name.
type benchSpec struct {
	name       string
	instrPerOp func() uint64
	body       func(b *testing.B)
}

var benchRegistry = []benchSpec{
	{"SimulateSuite", suiteInstr, benchSimulateSuite},
	{"SimulateSuiteTotalsOnly", suiteInstr, benchSimulateSuiteTotalsOnly},
	{"SimulateWorkload", workloadInstr, benchSimulateWorkload},
	{"StreamIngest", streamInstr, benchStreamIngest},
	{"FullRescore", nil, benchFullRescore},
	{"IncrRescore", nil, benchIncrRescore},
	{"MachineStep", func() uint64 { return 1 }, benchMachineStep},
	{"CacheAccess", nil, benchCacheAccess},
	{"TLBTranslate", nil, benchTLBTranslate},
}

func lookupBench(name string) (benchSpec, bool) {
	for _, b := range benchRegistry {
		if b.name == name {
			return b, true
		}
	}
	return benchSpec{}, false
}

func benchNames() string {
	names := make([]string, len(benchRegistry))
	for i, b := range benchRegistry {
		names[i] = b.name
	}
	return strings.Join(names, ", ")
}

func main() {
	testing.Init() // register test.* flags so benchtime can be set below
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		runCompare(os.Args[2:])
		return
	}
	runRecord(os.Args[1:])
}

// runRecord is the default mode: run every registered benchmark, write
// the snapshot, append to the history, and apply the requested gates.
func runRecord(args []string) {
	fs := flag.NewFlagSet("benchjson", flag.ExitOnError)
	out := fs.String("out", "BENCH_simulator.json", "output path for the latest snapshot")
	history := fs.String("history", "BENCH_history.jsonl", "append the run to this JSONL history (empty disables)")
	benchtime := fs.Duration("benchtime", time.Second, "minimum run time per benchmark")
	note := fs.String("note", "", "free-form origin tag recorded with the run (e.g. ci)")
	check := fs.String("check", "", "compare suite-level instr/sec against this committed snapshot and fail on regression")
	checkTolerance := fs.Float64("check-tolerance", 0.10, "relative regression allowed by -check")
	checkRounds := fs.Int("check-rounds", 3, "suite benchmark repetitions; the best round is kept")
	checkHistory := fs.String("check-history", "", "gate instr/sec-bearing benchmarks against this history's distribution")
	gateLastK := fs.Int("gate-last-k", 10, "reference window for -check-history: last K same-class runs")
	gatePercentile := fs.Float64("gate-percentile", 10, "low percentile of the reference window a run must not fall below")
	gateMinRuns := fs.Int("gate-min-runs", 3, "same-class runs required before -check-history will judge")
	fs.Parse(args)
	// The driver reads the package-level benchtime; there is no public
	// per-run knob, so set it the way `go test -benchtime` would.
	if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
		fatal(err)
	}
	rounds := 1
	if (*check != "" || *checkHistory != "") && *checkRounds > 1 {
		rounds = *checkRounds
	}

	rep := report{
		GeneratedAt: time.Now().UTC().Truncate(time.Second),
		GitSHA:      gitSHA(),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Rounds:      rounds,
		Note:        *note,
	}
	for _, bench := range benchRegistry {
		benchRounds := 1
		if bench.name == "SimulateSuite" {
			benchRounds = rounds
		}
		var r testing.BenchmarkResult
		for round := 0; round < benchRounds; round++ {
			got := testing.Benchmark(bench.body)
			if got.N == 0 {
				fmt.Fprintf(os.Stderr, "benchjson: %s did not run (benchmark failed?)\n", bench.name)
				os.Exit(1)
			}
			if round == 0 || nsPerOp(got) < nsPerOp(r) {
				r = got
			}
		}
		res := result{
			Name:       bench.name,
			NsPerOp:    nsPerOp(r),
			Iterations: r.N,
		}
		if bench.instrPerOp != nil {
			res.SimulatedInstrPerOp = bench.instrPerOp()
			res.SimulatedInstrPerSec = float64(res.SimulatedInstrPerOp) / (res.NsPerOp / 1e9)
		}
		rep.Benchmarks = append(rep.Benchmarks, res)
		fmt.Printf("%-24s %12.1f ns/op", res.Name, res.NsPerOp)
		if res.SimulatedInstrPerSec > 0 {
			fmt.Printf("  %.3g simulated instr/sec", res.SimulatedInstrPerSec)
		}
		fmt.Println()
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	// Gate against the history distribution as it stood BEFORE this run
	// is appended, so a run is never its own reference.
	var gateErr error
	if *checkHistory != "" {
		gateErr = checkAgainstHistory(*checkHistory, rep, perfhist.GateOptions{
			LastK:      *gateLastK,
			Percentile: *gatePercentile,
			MinRuns:    *gateMinRuns,
		})
	}
	if *history != "" {
		if err := appendHistory(*history, rep); err != nil {
			fatal(err)
		}
	}
	if gateErr != nil {
		fatal(gateErr)
	}
	if *check != "" {
		if err := checkRegression(*check, rep, *checkTolerance); err != nil {
			fatal(err)
		}
	}
}

// runCompare is the paired same-moment A/B gate: measure A and B
// interleaved for -rounds rounds, judge through perfhist.Compare, and
// exit non-zero on a significant regression.
func runCompare(args []string) {
	fs := flag.NewFlagSet("benchjson compare", flag.ExitOnError)
	aName := fs.String("a", "SimulateSuite", "baseline benchmark ("+benchNames()+")")
	bName := fs.String("b", "", "candidate benchmark (default: same as -a, a no-change self-comparison)")
	rounds := fs.Int("rounds", 5, "interleaved (A,B) round pairs")
	benchtime := fs.Duration("benchtime", time.Second, "minimum run time per benchmark round")
	out := fs.String("out", "", "write the machine-readable verdict JSON here (the CI job artifact)")
	inject := fs.Float64("inject-slowdown", 1, "multiply B's observed ns/op — synthetic-regression self-test knob")
	minEffect := fs.Float64("min-effect", 0.02, "relative change too small to flag even above the noise band")
	noiseMult := fs.Float64("noise-mult", 2, "noise multiplier in the significance band")
	fs.Parse(args)
	if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
		fatal(err)
	}
	if *bName == "" {
		*bName = *aName
	}
	a, ok := lookupBench(*aName)
	if !ok {
		fatal(fmt.Errorf("unknown benchmark %q (have %s)", *aName, benchNames()))
	}
	bb, ok := lookupBench(*bName)
	if !ok {
		fatal(fmt.Errorf("unknown benchmark %q (have %s)", *bName, benchNames()))
	}
	if *rounds < 1 {
		fatal(fmt.Errorf("compare needs at least one round"))
	}
	label := a.name
	if bb.name != a.name {
		label = a.name + " vs " + bb.name
	}
	var aNs, bNs []float64
	for round := 0; round < *rounds; round++ {
		ra := testing.Benchmark(a.body)
		rb := testing.Benchmark(bb.body)
		if ra.N == 0 || rb.N == 0 {
			fatal(fmt.Errorf("round %d did not run (benchmark failed?)", round))
		}
		aNs = append(aNs, nsPerOp(ra))
		bNs = append(bNs, nsPerOp(rb)**inject)
		fmt.Printf("round %d/%d: A %.3g ns/op, B %.3g ns/op\n",
			round+1, *rounds, aNs[round], bNs[round])
	}
	v, err := perfhist.Compare(context.Background(), label, aNs, bNs, perfhist.CompareOptions{
		MinEffect: *minEffect,
		NoiseMult: *noiseMult,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Println(v.Summary)
	if *out != "" {
		buf, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
	if v.Regressed {
		os.Exit(1)
	}
}

// checkAgainstHistory gates every instr/sec-bearing benchmark of the
// run against the history distribution: fail when one lands below the
// configured percentile of the last K same-machine-class runs.
func checkAgainstHistory(path string, rep report, opt perfhist.GateOptions) error {
	ctx := context.Background()
	h, err := perfhist.Load(ctx, path)
	if err != nil {
		return err
	}
	class := rep.Class()
	var failed []string
	for _, b := range rep.Benchmarks {
		if b.SimulatedInstrPerSec <= 0 {
			continue
		}
		res := h.Gate(ctx, b.Name, class, b.SimulatedInstrPerSec, opt)
		switch {
		case res.Inconclusive:
			fmt.Printf("check-history: %-24s inconclusive: %s\n", b.Name, res.Reason)
		case res.Pass:
			fmt.Printf("check-history: %-24s %.3g instr/sec ≥ p%g floor %.3g (%d %s/%s runs)\n",
				b.Name, res.Current, res.Percentile, res.Floor, res.ReferenceRuns, class.GOOS, class.GOARCH)
		default:
			failed = append(failed, res.Reason)
		}
	}
	if len(failed) > 0 {
		return fmt.Errorf("history gate: %s", strings.Join(failed, "; "))
	}
	return nil
}

func nsPerOp(r testing.BenchmarkResult) float64 {
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

// appendHistory adds the run as one JSON line to the history file.
func appendHistory(path string, rep report) error {
	line, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(append(line, '\n'))
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// suiteLevel extracts the SimulateSuite throughput of a report.
func suiteLevel(rep report) (float64, error) {
	for _, r := range rep.Benchmarks {
		if r.Name == "SimulateSuite" {
			return r.SimulatedInstrPerSec, nil
		}
	}
	return 0, fmt.Errorf("no SimulateSuite entry")
}

// checkRegression compares the run's suite-level throughput against the
// committed snapshot at path.
func checkRegression(path string, rep report, tolerance float64) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var committed report
	if err := json.Unmarshal(buf, &committed); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	want, err := suiteLevel(committed)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	got, err := suiteLevel(rep)
	if err != nil {
		return err
	}
	floor := want * (1 - tolerance)
	if got < floor {
		return fmt.Errorf("suite-level regression: %.3g simulated instr/sec < %.3g (committed %.3g − %.0f%%)",
			got, floor, want, 100*tolerance)
	}
	fmt.Printf("check: %.3g simulated instr/sec ≥ %.3g (committed %.3g − %.0f%%)\n",
		got, floor, want, 100*tolerance)
	return nil
}

// benchSimulateSuite mirrors BenchmarkSimulateSuite: the Nbench suite end
// to end at the paper's full configuration.
func benchSimulateSuite(b *testing.B) {
	runSuite(b, perspector.DefaultConfig())
}

// benchSimulateSuiteTotalsOnly is the same suite through the
// counters-only fast path: no sampled series, totals bit-identical.
func benchSimulateSuiteTotalsOnly(b *testing.B) {
	cfg := perspector.DefaultConfig()
	cfg.TotalsOnly = true
	runSuite(b, cfg)
}

func runSuite(b *testing.B, cfg perspector.Config) {
	s, err := perspector.SuiteByName("nbench", cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := perspector.Measure(s, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSimulateWorkload measures one workload — the first Nbench kernel —
// so per-core throughput is separable from the sharded suite number.
func benchSimulateWorkload(b *testing.B) {
	cfg := perspector.DefaultConfig()
	s, err := perspector.SuiteByName("nbench", cfg)
	if err != nil {
		b.Fatal(err)
	}
	s.Specs = s.Specs[:1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := perspector.Measure(s, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// streamBlock renders ~1 MiB of instruction-log text cycling through
// all five record kinds, and reports how many records it holds. The
// block is what one StreamIngest op parses.
func streamBlock() ([]byte, int) {
	var buf []byte
	records := 0
	for i := uint64(0); len(buf) < 1<<20; i++ {
		buf = append(buf, 'A', '\n')
		buf = append(buf, 'L', ',')
		buf = strconv.AppendUint(buf, i*64%(1<<22), 10)
		buf = append(buf, '\n', 'S', ',')
		buf = strconv.AppendUint(buf, i*128%(1<<24), 10)
		buf = append(buf, '\n', 'B', ',')
		buf = strconv.AppendUint(buf, 0x400000+i%64*4, 10)
		buf = append(buf, ',', '0'+byte(i&1), '\n')
		buf = append(buf, 'Y', ',', '0', '\n')
		records += 5
	}
	return buf, records
}

// repeatReader serves block reps times — a multi-GB log without the
// multi-GB buffer, mirroring the bounded-memory test in internal/trace.
type repeatReader struct {
	block []byte
	off   int
	reps  int
}

func (r *repeatReader) Read(p []byte) (int, error) {
	if r.reps == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.block[r.off:])
	r.off += n
	if r.off == len(r.block) {
		r.off = 0
		r.reps--
	}
	return n, nil
}

// benchStreamIngest measures the streaming trace reader: one op parses
// one streamBlock through ProgramReader.NextBatch. The instr/sec figure
// is parsed log records per second — the ingest ceiling for replaying
// instruction logs through the simulator.
func benchStreamIngest(b *testing.B) {
	block, perBlock := streamBlock()
	pr := trace.NewProgramReader(&repeatReader{block: block, reps: b.N}, "bench")
	batch := make([]uarch.Instr, 4096)
	b.SetBytes(int64(len(block)))
	b.ResetTimer()
	total := 0
	for {
		n := pr.NextBatch(batch)
		total += n
		if n < len(batch) {
			break
		}
	}
	if err := pr.Err(); err != nil {
		b.Fatal(err)
	}
	if total != perBlock*b.N {
		b.Fatalf("parsed %d records, want %d", total, perBlock*b.N)
	}
}

// rescoreMeasurement fabricates the fixed 64-workload measurement the
// FullRescore/IncrRescore pair scores — the same shape bench_test.go's
// benchStreamMeasurement builds, kept in lockstep so the committed
// numbers stay comparable with `go test -bench`.
func rescoreMeasurement() *perf.SuiteMeasurement {
	src := rng.New(2023)
	sm := &perf.SuiteMeasurement{Suite: "streambench"}
	for i := 0; i < 64; i++ {
		m := perf.Measurement{Workload: fmt.Sprintf("w%02d", i)}
		m.Series.Interval = 1000
		for c := 0; c < int(perf.NumCounters); c++ {
			m.Totals[perf.Counter(c)] = uint64(src.Intn(50000))
			for s := 0; s < 64; s++ {
				m.Series.Samples[perf.Counter(c)] = append(
					m.Series.Samples[perf.Counter(c)], float64(src.Intn(2000)))
			}
		}
		sm.Workloads = append(sm.Workloads, m)
	}
	return sm
}

// benchFullRescore scores the fixed measurement from scratch every op —
// what a streaming client would pay per chunk without the incremental
// engine.
func benchFullRescore(b *testing.B) {
	sm := rescoreMeasurement()
	opts := metric.DefaultOptions()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := metric.ScoreSuites(ctx, []*perf.SuiteMeasurement{sm}, opts, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// benchIncrRescore measures the streaming steady state: the run already
// holds the measurement, one op appends a sample chunk (two series
// samples per counter) to one workload and rescores incrementally.
func benchIncrRescore(b *testing.B) {
	run, err := metric.NewIncrementalRun(
		[]*perf.SuiteMeasurement{rescoreMeasurement()}, metric.DefaultOptions(), nil)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if _, err := run.Scores(ctx); err != nil {
		b.Fatal(err)
	}
	names := make([]string, len(run.Measurement(0).Workloads))
	for i := range names {
		names[i] = run.Measurement(0).Workloads[i].Workload
	}
	src := rng.New(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tail := &perf.TimeSeries{Interval: 1000}
		for c := 0; c < int(perf.NumCounters); c++ {
			tail.Samples[perf.Counter(c)] = []float64{
				float64(src.Intn(2000)), float64(src.Intn(2000))}
		}
		if err := run.AppendSamples(0, names[i%len(names)], perf.Values{}, tail); err != nil {
			b.Fatal(err)
		}
		if _, err := run.Scores(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func streamInstr() uint64 {
	_, perBlock := streamBlock()
	return uint64(perBlock)
}

func suiteInstr() uint64 {
	cfg := perspector.DefaultConfig()
	s, err := perspector.SuiteByName("nbench", cfg)
	if err != nil {
		return 0
	}
	return cfg.Instructions * uint64(len(s.Specs))
}

func workloadInstr() uint64 {
	return perspector.DefaultConfig().Instructions
}

// strideProg mirrors the deterministic generator of the in-tree
// BenchmarkMachineStep: a fixed kind mix whose own cost is a few ALU ops,
// so the measurement isolates the machine's per-instruction step.
type strideProg struct {
	n, limit uint64
}

func (p *strideProg) Name() string { return "stride" }

func (p *strideProg) Next(in *uarch.Instr) bool {
	if p.n >= p.limit {
		return false
	}
	i := p.n
	p.n++
	switch i % 8 {
	case 0, 3:
		*in = uarch.Instr{Kind: uarch.Load, Addr: i * 24}
	case 5:
		*in = uarch.Instr{Kind: uarch.Store, Addr: i * 40}
	case 6:
		*in = uarch.Instr{Kind: uarch.Branch, PC: 0x400000 + i%32*4, Taken: i%3 != 0}
	default:
		*in = uarch.Instr{Kind: uarch.ALU}
	}
	return true
}

func (p *strideProg) Reset() { p.n = 0 }

func benchMachineStep(b *testing.B) {
	m, err := uarch.NewMachine(uarch.DefaultMachineConfig())
	if err != nil {
		b.Fatal(err)
	}
	n := uint64(b.N)
	b.ResetTimer()
	if _, err := m.Run(&strideProg{limit: n}, n); err != nil {
		b.Fatal(err)
	}
}

func benchCacheAccess(b *testing.B) {
	c, err := uarch.NewCache(uarch.CacheConfig{Name: "b", SizeB: 32 << 10, LineB: 64, Ways: 8})
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(1)
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(src.Intn(1 << 22))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&4095])
	}
}

func benchTLBTranslate(b *testing.B) {
	tlb, err := uarch.NewTLB(uarch.DefaultTLBConfig())
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(1)
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(src.Intn(1 << 30))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tlb.Translate(addrs[i&4095])
	}
}
