package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"perspector"
	"perspector/internal/stage"
	"perspector/internal/store"
)

// capture swaps stdout for a buffer around fn.
func capture(t *testing.T, fn func() error) string {
	t.Helper()
	var buf bytes.Buffer
	old := stdout
	stdout = &buf
	defer func() { stdout = old }()
	if err := fn(); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// fast shrinks the simulation flags so CLI tests stay quick.
func fast(args ...string) []string {
	return append(args, "-instr", "20000", "-samples", "10")
}

func TestRunList(t *testing.T) {
	out := capture(t, func() error { return runList(nil) })
	for _, want := range []string{"parsec", "spec17", "ligra", "lmbench", "nbench", "sgxgauge",
		"cpu-cycles", "LLC-load-misses", "event groups"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q", want)
		}
	}
	verbose := capture(t, func() error { return runList([]string{"-v"}) })
	if !strings.Contains(verbose, "spec17.505.mcf_r") {
		t.Error("verbose list missing workload names")
	}
}

func TestRunScore(t *testing.T) {
	out := capture(t, func() error { return runScore(fast("-suite", "nbench")) })
	if !strings.Contains(out, "nbench") || !strings.Contains(out, "cluster") {
		t.Errorf("score output:\n%s", out)
	}
}

// TestRunScoreJSONRoundTrip checks the -json satellite: the document is
// the service's ScoreSet schema and decodes back to the exact scores the
// engine computed for the same flags.
func TestRunScoreJSONRoundTrip(t *testing.T) {
	out := capture(t, func() error { return runScore(fast("-suite", "nbench", "-json")) })
	var set store.ScoreSet
	if err := json.Unmarshal([]byte(out), &set); err != nil {
		t.Fatalf("score -json is not valid JSON: %v\n%s", err, out)
	}
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	if set.Kind != store.KindScore || set.Source != "simulator" || set.Group != "all" {
		t.Fatalf("envelope: %+v", set)
	}
	if set.Config == nil || set.Config.Instructions != 20000 || set.Config.Samples != 10 || set.Config.Seed != 2023 {
		t.Fatalf("config: %+v", set.Config)
	}

	// Reference scores through the library with the same parameters.
	cfg := perspector.DefaultConfig()
	cfg.Instructions, cfg.Samples = 20000, 10
	s, err := perspector.SuiteByName("nbench", cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := perspector.Measure(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := perspector.Score(m, perspector.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := set.Scores(); len(got) != 1 || got[0] != want {
		t.Fatalf("decoded scores diverge from the engine:\n got %x\nwant %x", got, want)
	}
}

func TestRunCompareJSONRoundTrip(t *testing.T) {
	out := capture(t, func() error {
		return runCompare(fast("-suites", "nbench,sgxgauge", "-json"))
	})
	var set store.ScoreSet
	if err := json.Unmarshal([]byte(out), &set); err != nil {
		t.Fatalf("compare -json is not valid JSON: %v\n%s", err, out)
	}
	if set.Kind != store.KindCompare || len(set.Suites) != 2 {
		t.Fatalf("envelope: %+v", set)
	}
	if set.Suites[0].Suite != "nbench" || set.Suites[1].Suite != "sgxgauge" {
		t.Fatalf("suite order: %+v", set.Suites)
	}
}

func TestRunScoreErrors(t *testing.T) {
	if err := runScore(nil); err == nil {
		t.Error("missing -suite accepted")
	}
	if err := runScore(fast("-suite", "bogus")); err == nil {
		t.Error("bogus suite accepted")
	}
	if err := runScore(fast("-suite", "nbench", "-repeat", "0")); err == nil {
		t.Error("repeat 0 accepted")
	}
	if err := runScore(fast("-suite", "nbench", "-group", "bogus")); err == nil {
		t.Error("bogus group accepted")
	}
	if err := runScore(fast("-suite", "nbench", "-repeat", "2", "-json")); err == nil {
		t.Error("-json with -repeat accepted")
	}
}

func TestRunScoreRepeat(t *testing.T) {
	out := capture(t, func() error {
		return runScore(fast("-suite", "nbench", "-repeat", "2"))
	})
	if !strings.Contains(out, "±") || !strings.Contains(out, "2 seeds") {
		t.Errorf("repeat output:\n%s", out)
	}
}

func TestRunCompareWithRank(t *testing.T) {
	out := capture(t, func() error {
		return runCompare(fast("-suites", "nbench,sgxgauge", "-rank"))
	})
	for _, want := range []string{"nbench", "sgxgauge", "rankings", "overall"} {
		if !strings.Contains(out, want) {
			t.Errorf("compare output missing %q:\n%s", want, out)
		}
	}
}

func TestRunCompareErrors(t *testing.T) {
	if err := runCompare(fast("-suites", "")); err == nil {
		t.Error("empty suite list accepted")
	}
	if err := runCompare(fast("-suites", "bogus")); err == nil {
		t.Error("bogus suite accepted")
	}
	if err := runCompare(fast("-suites", "nbench", "-json", "-rank")); err == nil {
		t.Error("-json with -rank accepted")
	}
}

func TestRunDumpCSV(t *testing.T) {
	out := capture(t, func() error { return runDump(fast("-suite", "nbench")) })
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 11 { // header + 10 workloads
		t.Fatalf("dump lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "workload,cpu-cycles") {
		t.Errorf("dump header = %q", lines[0])
	}
	if err := runDump(fast()); err == nil {
		t.Error("missing -suite accepted")
	}
}

func TestRunSubset(t *testing.T) {
	out := capture(t, func() error {
		return runSubset(fast("-suite", "spec17", "-size", "5"))
	})
	if !strings.Contains(out, "deviation") {
		t.Errorf("subset output:\n%s", out)
	}
	if strings.Count(out, "spec17.") != 5 {
		t.Errorf("subset did not list 5 workloads:\n%s", out)
	}
}

func TestRunPhases(t *testing.T) {
	out := capture(t, func() error {
		return runPhases(fast("-suite", "nbench", "-workload", "nbench.idea"))
	})
	if !strings.Contains(out, "phase boundaries") {
		t.Errorf("phases output:\n%s", out)
	}
	if err := runPhases(fast("-suite", "nbench", "-workload", "nope")); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := runPhases(fast("-suite", "nbench", "-workload", "nbench.idea",
		"-counter", "bogus")); err == nil {
		t.Error("bogus counter accepted")
	}
}

func TestRunProfile(t *testing.T) {
	out := capture(t, func() error { return runProfile(fast("-suite", "nbench")) })
	if !strings.Contains(out, "boundaries/workload") {
		t.Errorf("profile output:\n%s", out)
	}
}

func TestRunBaseline(t *testing.T) {
	out := capture(t, func() error {
		return runBaseline(fast("-suite", "nbench", "-k", "3"))
	})
	if !strings.Contains(out, "silhouette") || strings.Count(out, "cluster ") < 3 {
		t.Errorf("baseline output:\n%s", out)
	}
	if err := runBaseline(fast("-suite", "nbench", "-linkage", "bogus")); err == nil {
		t.Error("bogus linkage accepted")
	}
}

func TestRunRedundancy(t *testing.T) {
	out := capture(t, func() error {
		return runRedundancy(fast("-suite", "spec17", "-threshold", "0.95"))
	})
	if !strings.Contains(out, "r =") && !strings.Contains(out, "no counter pairs") {
		t.Errorf("redundancy output:\n%s", out)
	}
}

func TestRunExportScoreFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.json")
	capture(t, func() error {
		return runExport(fast("-suite", "nbench", "-o", path))
	})
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("export produced no file: %v", err)
	}
	out := capture(t, func() error {
		return runScoreFile([]string{"-f", path})
	})
	if !strings.Contains(out, "nbench") {
		t.Errorf("score-file output:\n%s", out)
	}

	// CSV path.
	csvPath := filepath.Join(dir, "trace.csv")
	capture(t, func() error {
		return runExport(fast("-suite", "nbench", "-o", csvPath, "-format", "csv"))
	})
	out = capture(t, func() error {
		return runScoreFile([]string{"-f", csvPath, "-format", "csv", "-name", "nbench"})
	})
	if !strings.Contains(out, "TrendScore unavailable") {
		t.Errorf("csv score-file output:\n%s", out)
	}

	// -follow over the static file: one incremental update, bit-identical
	// to the one-shot batch row above.
	batch := capture(t, func() error {
		return runScoreFile([]string{"-f", path})
	})
	followOut := capture(t, func() error {
		return runScoreFile([]string{"-f", path, "-follow", "-max-updates", "1", "-poll", "10ms"})
	})
	var batchRow string
	for _, line := range strings.Split(batch, "\n") {
		if strings.HasPrefix(line, "nbench") {
			batchRow = line
		}
	}
	if batchRow == "" || !strings.Contains(followOut, batchRow) {
		t.Errorf("-follow row diverges from batch:\nbatch:\n%s\nfollow:\n%s", batch, followOut)
	}
}

// TestRunScoreTimeout drives the -timeout satellite end to end in
// process: an instruction budget far beyond the deadline must come back
// as a stage-tagged cancellation error (which main turns into a
// non-zero exit), not a finished score table.
func TestRunScoreTimeout(t *testing.T) {
	err := runScore([]string{"-suite", "parsec", "-instr", "200000000", "-samples", "100",
		"-timeout", "30ms"})
	if err == nil {
		t.Fatal("timed-out score succeeded")
	}
	if !stage.Canceled(err) {
		t.Fatalf("error not recognized as cancellation: %v", err)
	}
	var se *stage.Error
	if !errors.As(err, &se) || se.Stage != stage.Measure {
		t.Fatalf("error carries no measure-stage tag: %v", err)
	}
}

func TestRunExportErrors(t *testing.T) {
	if err := runExport(fast()); err == nil {
		t.Error("missing -suite accepted")
	}
	if err := runExport(fast("-suite", "nbench", "-format", "bogus")); err == nil {
		t.Error("bogus format accepted")
	}
	if err := runScoreFile(nil); err == nil {
		t.Error("missing -f accepted")
	}
	if err := runScoreFile([]string{"-f", "/nonexistent", "-format", "json"}); err == nil {
		t.Error("missing file accepted")
	}
}

// customSpec writes a minimal user-authored suite spec to a temp file
// and returns its path — the -suite-file input of the tests below.
func customSpec(t *testing.T) string {
	t.Helper()
	doc := `{
  "version": 1,
  "name": "custom",
  "description": "user-authored test suite",
  "workloads": [
    {
      "name": "custom.scan",
      "phases": [
        {
          "name": "scan",
          "weight": 1,
          "load_frac": 0.4,
          "load_pattern": {"kind": "sequential", "working_set": 1048576, "stride": 64}
        }
      ]
    },
    {
      "name": "custom.chase",
      "phases": [
        {
          "name": "chase",
          "weight": 1,
          "load_frac": 0.5,
          "load_pattern": {"kind": "pointer_chase", "working_set": 262144}
        }
      ]
    }
  ]
}
`
	path := filepath.Join(t.TempDir(), "custom.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunScoreSuiteFile scores a user-authored spec file end-to-end:
// load, build under the flag config, simulate, score.
func TestRunScoreSuiteFile(t *testing.T) {
	path := customSpec(t)
	out := capture(t, func() error { return runScore(fast("-suite-file", path)) })
	if !strings.Contains(out, "custom") || !strings.Contains(out, "cluster") {
		t.Errorf("suite-file score output:\n%s", out)
	}
	// An explicit -suite alongside -suite-file is ambiguous and must fail.
	if err := runScore(fast("-suite", "nbench", "-suite-file", path)); err == nil {
		t.Error("score accepted both -suite and -suite-file")
	}
}

// TestRunCompareSuiteFiles scores a spec-file suite jointly with a
// registered one — the user-suite-vs-stock comparison of the README.
func TestRunCompareSuiteFiles(t *testing.T) {
	path := customSpec(t)
	out := capture(t, func() error {
		return runCompare(fast("-suites", "nbench", "-suite-files", path))
	})
	if !strings.Contains(out, "nbench") || !strings.Contains(out, "custom") {
		t.Errorf("compare output missing a suite:\n%s", out)
	}
}

func TestRunValidate(t *testing.T) {
	path := customSpec(t)
	out := capture(t, func() error { return runValidate([]string{path}) })
	if !strings.Contains(out, "ok") || !strings.Contains(out, "custom") {
		t.Errorf("validate output:\n%s", out)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version":1,"name":"x","workloads":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runValidate([]string{bad}); err == nil {
		t.Error("validate accepted an invalid spec")
	}
	if err := runValidate(nil); err == nil {
		t.Error("validate accepted an empty file list")
	}
}

// TestRunListIncludesSpecOnlySuites pins the registry-driven list: the
// spec-only suite families must appear alongside the stock six.
func TestRunListIncludesSpecOnlySuites(t *testing.T) {
	out := capture(t, func() error { return runList(nil) })
	for _, want := range []string{"bigdatabench", "cpu2026"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing spec-only suite %q", want)
		}
	}
}

// TestRunScoreUnknownSuite pins the registry error: an unknown name must
// list every registered suite so the user can self-correct.
func TestRunScoreUnknownSuite(t *testing.T) {
	err := runScore(fast("-suite", "nonesuch"))
	if err == nil {
		t.Fatal("unknown suite accepted")
	}
	for _, want := range []string{"nonesuch", "parsec", "sgxgauge", "bigdatabench", "cpu2026"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-suite error missing %q: %v", want, err)
		}
	}
}
