// Command perspector scores benchmark suites on the built-in
// microarchitecture simulator, reproducing the tool of "Perspector:
// Benchmarking Benchmark Suites" (DATE 2023).
//
// Subcommands:
//
//	perspector list
//	    List the stock suites, their workloads, and the PMU counters.
//
//	perspector score -suite parsec [-group all|llc|tlb] [-instr N] [-samples N] [-seed N]
//	    Measure one suite and print its four Perspector scores.
//
//	perspector compare [-suites parsec,spec17,...] [-group ...]
//	    Measure several suites and score them under joint normalization
//	    (the paper's Fig. 3 methodology). Default: all six.
//
//	perspector subset -suite spec17 -size 8 [-subsetseed N]
//	    Generate a representative subset via Latin Hypercube Sampling
//	    (§IV-C) and report the score deviation.
//
//	perspector dump -suite nbench
//	    Print the workload × counter matrix as CSV.
//
//	perspector phases -suite parsec -workload parsec.x264 -counter LLC-load-misses
//	    Detect phase boundaries in one workload's counter series.
//
//	perspector profile -suite parsec
//	    Per-workload phase-boundary counts across the event group.
//
//	perspector baseline -suite spec17 -k 6 [-linkage average]
//	    Run the prior-work pipeline (PCA + hierarchical clustering) the
//	    paper's §II critiques, with the silhouette Perspector adds.
//
//	perspector redundancy -suite spec17 [-threshold 0.9]
//	    Report strongly correlated (droppable) PMU counter pairs.
//
//	perspector export -suite nbench -o trace.json [-format json|csv]
//	perspector score-file -f trace.json [-format json|csv] [-name imported]
//	    Archive measurements and score external (e.g. perf-derived) data.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"perspector"
	"perspector/internal/cache"
	"perspector/internal/core"
	"perspector/internal/par"
	"perspector/internal/perf"
)

// stdout is the destination for command output; tests swap it for a
// buffer.
var stdout io.Writer = os.Stdout

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "list":
		err = runList(args)
	case "score":
		err = runScore(args)
	case "compare":
		err = runCompare(args)
	case "subset":
		err = runSubset(args)
	case "dump":
		err = runDump(args)
	case "phases":
		err = runPhases(args)
	case "profile":
		err = runProfile(args)
	case "baseline":
		err = runBaseline(args)
	case "export":
		err = runExport(args)
	case "score-file":
		err = runScoreFile(args)
	case "redundancy":
		err = runRedundancy(args)
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "perspector: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "perspector:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: perspector <command> [flags]

commands:
  list      list stock suites, workloads and PMU counters
  score     score one suite
  compare   score several suites under joint normalization
  subset    generate a representative workload subset (LHS)
  dump      print the workload x counter matrix
  phases    detect phase changes in a counter time series
  profile   per-workload phase-boundary counts for a suite
  baseline  run the prior-work pipeline (PCA + hierarchical clustering)
  export    measure a suite and write a portable JSON trace
  score-file score measurements from a JSON trace or totals CSV
  redundancy report strongly correlated (droppable) PMU counters

run "perspector <command> -h" for command flags`)
}

// commonFlags registers the shared simulation flags on a FlagSet.
type commonFlags struct {
	instr    uint64
	samples  int
	seed     uint64
	group    string
	workers  int
	cacheDir string
	noCache  bool
	verbose  bool
}

func addCommon(fs *flag.FlagSet) *commonFlags {
	c := &commonFlags{}
	fs.Uint64Var(&c.instr, "instr", 400_000, "instructions per workload")
	fs.IntVar(&c.samples, "samples", 100, "PMU samples per workload")
	fs.Uint64Var(&c.seed, "seed", 2023, "master seed")
	fs.StringVar(&c.group, "group", "all", "event group: all, llc, tlb")
	fs.IntVar(&c.workers, "workers", 0, "parallel workers (0 = all CPUs); results are identical at any count")
	fs.StringVar(&c.cacheDir, "cache-dir", "", "measurement cache directory (empty = no cache)")
	fs.BoolVar(&c.noCache, "no-cache", false, "disable the measurement cache even if -cache-dir is set")
	fs.BoolVar(&c.verbose, "v", false, "verbose: worker count and cache statistics on stderr")
	return c
}

func (c *commonFlags) config() perspector.Config {
	cfg := perspector.DefaultConfig()
	cfg.Instructions = c.instr
	cfg.Samples = c.samples
	cfg.Seed = c.seed
	return cfg
}

// setup applies the worker bound and opens the measurement cache.
// A nil store (no -cache-dir, or -no-cache) passes measurements straight
// through to the simulator.
func (c *commonFlags) setup() (*cache.Store, error) {
	if c.workers != 0 {
		perspector.SetWorkers(c.workers)
	}
	if c.noCache || c.cacheDir == "" {
		return nil, nil
	}
	return cache.Open(c.cacheDir)
}

// measure runs one suite through the cache (or directly when disabled).
func (c *commonFlags) measure(st *cache.Store, s perspector.Suite, cfg perspector.Config) (*perspector.Measurement, error) {
	return st.Measure(s, cfg)
}

// report prints worker/cache statistics to stderr under -v.
func (c *commonFlags) report(st *cache.Store) {
	if !c.verbose {
		return
	}
	fmt.Fprintf(os.Stderr, "workers: %d\n", perspector.Workers())
	fmt.Fprintln(os.Stderr, st.Stats())
}

// measureSuite applies the worker/cache flags, measures one named suite
// (through the cache when enabled), and prints -v statistics.
func (c *commonFlags) measureSuite(name string, cfg perspector.Config) (*perspector.Measurement, error) {
	st, err := c.setup()
	if err != nil {
		return nil, err
	}
	defer c.report(st)
	s, err := perspector.SuiteByName(name, cfg)
	if err != nil {
		return nil, err
	}
	return c.measure(st, s, cfg)
}

func (c *commonFlags) options() (perspector.Options, error) {
	opts := perspector.DefaultOptions()
	counters, err := perspector.EventGroup(c.group)
	if err != nil {
		return opts, err
	}
	opts.Counters = counters
	return opts, nil
}

func runList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	common := addCommon(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := common.config()
	fmt.Fprintln(stdout, "suites:")
	for _, s := range perspector.StockSuites(cfg) {
		fmt.Fprintf(stdout, "  %-10s %2d workloads  %s\n", s.Name, len(s.Specs), s.Description)
		if common.verbose {
			for _, w := range s.Specs {
				fmt.Fprintf(stdout, "      %s\n", w.Name)
			}
		}
	}
	fmt.Fprintln(stdout, "\nPMU counters (Table IV):")
	for _, c := range perf.AllCounters() {
		fmt.Fprintf(stdout, "  %s\n", c)
	}
	fmt.Fprintln(stdout, "\nevent groups: all, llc, tlb")
	return nil
}

func runScore(args []string) error {
	fs := flag.NewFlagSet("score", flag.ExitOnError)
	common := addCommon(fs)
	suite := fs.String("suite", "", "suite to score (required)")
	repeat := fs.Int("repeat", 1, "measure with N different seeds and report mean ± sd")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *suite == "" {
		return fmt.Errorf("score: -suite is required")
	}
	if *repeat < 1 {
		return fmt.Errorf("score: -repeat must be >= 1")
	}
	cfg := common.config()
	opts, err := common.options()
	if err != nil {
		return err
	}
	store, err := common.setup()
	if err != nil {
		return err
	}
	defer common.report(store)
	if *repeat == 1 {
		s, err := perspector.SuiteByName(*suite, cfg)
		if err != nil {
			return err
		}
		m, err := common.measure(store, s, cfg)
		if err != nil {
			return err
		}
		scores, err := perspector.Score(m, opts)
		if err != nil {
			return err
		}
		printScoreHeader()
		printScoreRow(scores)
		return nil
	}
	// The repeats are independent simulations under different seeds: fan
	// them out, keeping seed order in the results.
	runs := make([]*perspector.Measurement, *repeat)
	errs := make([]error, *repeat)
	par.Do(*repeat, func(_, r int) {
		runCfg := cfg
		runCfg.Seed = cfg.Seed + uint64(r)
		s, err := perspector.SuiteByName(*suite, runCfg)
		if err != nil {
			errs[r] = err
			return
		}
		runs[r], errs[r] = common.measure(store, s, runCfg)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	st, err := perspector.ScoreStability(runs, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s over %d seeds (mean ± sd):\n", st.Suite, st.Runs)
	fmt.Fprintf(stdout, "  cluster  %8.4f ± %.4f\n", st.Mean.Cluster, st.StdDev.Cluster)
	fmt.Fprintf(stdout, "  trend    %8.2f ± %.2f\n", st.Mean.Trend, st.StdDev.Trend)
	fmt.Fprintf(stdout, "  coverage %8.5f ± %.5f\n", st.Mean.Coverage, st.StdDev.Coverage)
	fmt.Fprintf(stdout, "  spread   %8.4f ± %.4f\n", st.Mean.Spread, st.StdDev.Spread)
	return nil
}

func runCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	common := addCommon(fs)
	list := fs.String("suites", "parsec,spec17,ligra,lmbench,nbench,sgxgauge",
		"comma-separated suites to compare")
	rank := fs.Bool("rank", false, "print per-metric and overall rankings")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := common.config()
	store, err := common.setup()
	if err != nil {
		return err
	}
	defer common.report(store)
	var names []string
	for _, name := range strings.Split(*list, ",") {
		if name = strings.TrimSpace(name); name != "" {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return fmt.Errorf("compare: no suites given")
	}
	// Per-suite fan-out: each task measures (or cache-loads) one suite
	// into its own slot; suite order and scores are identical to the
	// serial loop.
	ms := make([]*perspector.Measurement, len(names))
	errs := make([]error, len(names))
	par.Do(len(names), func(_, i int) {
		s, err := perspector.SuiteByName(names[i], cfg)
		if err != nil {
			errs[i] = err
			return
		}
		ms[i], errs[i] = common.measure(store, s, cfg)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	opts, err := common.options()
	if err != nil {
		return err
	}
	scores, err := perspector.Compare(ms, opts)
	if err != nil {
		return err
	}
	printScoreHeader()
	for _, s := range scores {
		printScoreRow(s)
	}
	if *rank {
		r, err := perspector.Rank(scores)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "\nrankings (best first):")
		fmt.Fprintf(stdout, "  %-12s %s\n", "cluster:", strings.Join(r.ByCluster, " > "))
		fmt.Fprintf(stdout, "  %-12s %s\n", "trend:", strings.Join(r.ByTrend, " > "))
		fmt.Fprintf(stdout, "  %-12s %s\n", "coverage:", strings.Join(r.ByCoverage, " > "))
		fmt.Fprintf(stdout, "  %-12s %s\n", "spread:", strings.Join(r.BySpread, " > "))
		fmt.Fprintln(stdout, "\noverall (mean rank):")
		for _, name := range r.Overall {
			fmt.Fprintf(stdout, "  %-12s %.2f\n", name, r.MeanRank[name])
		}
	}
	return nil
}

func printScoreHeader() {
	fmt.Fprintf(stdout, "%-10s %12s %12s %12s %12s\n", "suite",
		"cluster(-)", "trend(+)", "coverage(+)", "spread(-)")
}

func printScoreRow(s perspector.Scores) {
	fmt.Fprintf(stdout, "%-10s %12.4f %12.2f %12.5f %12.4f\n",
		s.Suite, s.Cluster, s.Trend, s.Coverage, s.Spread)
}

func runSubset(args []string) error {
	fs := flag.NewFlagSet("subset", flag.ExitOnError)
	common := addCommon(fs)
	suite := fs.String("suite", "spec17", "suite to subset")
	size := fs.Int("size", 8, "subset size")
	subsetSeed := fs.Uint64("subsetseed", 0, "LHS seed (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := common.config()
	s, err := perspector.SuiteByName(*suite, cfg)
	if err != nil {
		return err
	}
	m, err := common.measureSuite(*suite, cfg)
	if err != nil {
		return err
	}
	opts, err := common.options()
	if err != nil {
		return err
	}
	so := perspector.DefaultSubsetOptions(*size)
	if *subsetSeed != 0 {
		so.Seed = *subsetSeed
	}
	res, err := perspector.GenerateSubset(m, opts, so)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "subset of %s (%d of %d workloads):\n", *suite, *size, len(s.Specs))
	for _, n := range res.Names {
		fmt.Fprintln(stdout, "  ", n)
	}
	fmt.Fprintln(stdout)
	printScoreHeader()
	full := res.Full
	full.Suite = "full"
	sub := res.Subset
	sub.Suite = "subset"
	printScoreRow(full)
	printScoreRow(sub)
	fmt.Fprintf(stdout, "mean relative deviation: %.2f%%\n", 100*res.Deviation)
	return nil
}

func runDump(args []string) error {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	common := addCommon(fs)
	suite := fs.String("suite", "", "suite to dump (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *suite == "" {
		return fmt.Errorf("dump: -suite is required")
	}
	cfg := common.config()
	m, err := common.measureSuite(*suite, cfg)
	if err != nil {
		return err
	}
	counters, err := perspector.EventGroup(common.group)
	if err != nil {
		return err
	}
	// CSV header.
	fmt.Fprint(stdout, "workload")
	for _, c := range counters {
		fmt.Fprintf(stdout, ",%s", c)
	}
	fmt.Fprintln(stdout)
	for _, w := range m.Workloads {
		fmt.Fprint(stdout, w.Workload)
		for _, c := range counters {
			fmt.Fprintf(stdout, ",%d", w.Totals.Get(c))
		}
		fmt.Fprintln(stdout)
	}
	return nil
}

func runPhases(args []string) error {
	fs := flag.NewFlagSet("phases", flag.ExitOnError)
	common := addCommon(fs)
	suite := fs.String("suite", "", "suite (required)")
	workloadName := fs.String("workload", "", "workload name (required)")
	counterName := fs.String("counter", "LLC-load-misses", "PMU counter")
	window := fs.Int("window", 5, "detector half-window in samples")
	threshold := fs.Float64("threshold", 2, "detector threshold in local-noise units")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *suite == "" || *workloadName == "" {
		return fmt.Errorf("phases: -suite and -workload are required")
	}
	cfg := common.config()
	m, err := common.measureSuite(*suite, cfg)
	if err != nil {
		return err
	}
	counter, err := perf.ParseCounter(*counterName)
	if err != nil {
		return err
	}
	for _, w := range m.Workloads {
		if w.Workload != *workloadName {
			continue
		}
		series := w.Series.Series(counter)
		changes, err := core.DetectPhases(series, *window, *threshold)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s / %s: %d samples, %d phase boundaries\n",
			*workloadName, counter, len(series), len(changes))
		for _, c := range changes {
			pct := 100 * float64(c.Index) / float64(len(series))
			fmt.Fprintf(stdout, "  sample %4d (%5.1f%% of execution)  shift %.1f\n",
				c.Index, pct, c.Shift)
		}
		return nil
	}
	return fmt.Errorf("phases: workload %q not found in %s (try 'perspector list -v')",
		*workloadName, *suite)
}

func runExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	common := addCommon(fs)
	suite := fs.String("suite", "", "suite to measure and export (required)")
	out := fs.String("o", "", "output file (default stdout)")
	format := fs.String("format", "json", "output format: json (full) or csv (totals)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *suite == "" {
		return fmt.Errorf("export: -suite is required")
	}
	cfg := common.config()
	m, err := common.measureSuite(*suite, cfg)
	if err != nil {
		return err
	}
	var w io.Writer = stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "json":
		return perspector.ExportJSON(w, m)
	case "csv":
		counters, err := perspector.EventGroup(common.group)
		if err != nil {
			return err
		}
		return perspector.ExportCSV(w, m, counters)
	default:
		return fmt.Errorf("export: unknown format %q", *format)
	}
}

func runScoreFile(args []string) error {
	fs := flag.NewFlagSet("score-file", flag.ExitOnError)
	common := addCommon(fs)
	path := fs.String("f", "", "trace file (required)")
	format := fs.String("format", "json", "input format: json or csv")
	suiteName := fs.String("name", "imported", "suite name for csv input")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" {
		return fmt.Errorf("score-file: -f is required")
	}
	f, err := os.Open(*path)
	if err != nil {
		return err
	}
	defer f.Close()
	var m *perspector.Measurement
	switch *format {
	case "json":
		m, err = perspector.ImportJSON(f)
	case "csv":
		m, err = perspector.ImportCSV(f, *suiteName)
	default:
		return fmt.Errorf("score-file: unknown format %q", *format)
	}
	if err != nil {
		return err
	}
	opts, err := common.options()
	if err != nil {
		return err
	}
	// CSV input has no time series: skip the TrendScore rather than fail.
	hasSeries := len(m.Workloads) > 0 && m.Workloads[0].Series.Len() > 0
	if !hasSeries {
		x, err := core.ScoreSuiteNoTrend(m, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%-10s %12s %12s %12s\n", "suite", "cluster(-)", "coverage(+)", "spread(-)")
		fmt.Fprintf(stdout, "%-10s %12.4f %12.5f %12.4f\n", x.Suite, x.Cluster, x.Coverage, x.Spread)
		fmt.Fprintln(stdout, "(no time-series data in input: TrendScore unavailable)")
		return nil
	}
	scores, err := perspector.Score(m, opts)
	if err != nil {
		return err
	}
	printScoreHeader()
	printScoreRow(scores)
	return nil
}

func runRedundancy(args []string) error {
	fs := flag.NewFlagSet("redundancy", flag.ExitOnError)
	common := addCommon(fs)
	suite := fs.String("suite", "", "suite to analyze (required)")
	threshold := fs.Float64("threshold", 0.9, "minimum |Pearson r| to report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *suite == "" {
		return fmt.Errorf("redundancy: -suite is required")
	}
	cfg := common.config()
	m, err := common.measureSuite(*suite, cfg)
	if err != nil {
		return err
	}
	opts, err := common.options()
	if err != nil {
		return err
	}
	pairs, err := perspector.CounterRedundancy(m, opts, *threshold)
	if err != nil {
		return err
	}
	if len(pairs) == 0 {
		fmt.Fprintf(stdout, "no counter pairs with |r| >= %.2f in %s\n", *threshold, *suite)
		return nil
	}
	fmt.Fprintf(stdout, "redundant counter pairs in %s (|r| >= %.2f):\n", *suite, *threshold)
	for _, p := range pairs {
		fmt.Fprintf(stdout, "  %-32s ~ %-32s r = %+.3f\n", p.A, p.B, p.R)
	}
	fmt.Fprintln(stdout, "\ndropping one of each pair frees a hardware counter without losing signal")
	return nil
}

func runProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	common := addCommon(fs)
	suite := fs.String("suite", "", "suite to profile (required)")
	window := fs.Int("window", 5, "detector half-window in samples")
	threshold := fs.Float64("threshold", 2.5, "detector threshold in local-noise units")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *suite == "" {
		return fmt.Errorf("profile: -suite is required")
	}
	cfg := common.config()
	m, err := common.measureSuite(*suite, cfg)
	if err != nil {
		return err
	}
	opts, err := common.options()
	if err != nil {
		return err
	}
	prof, err := perspector.ProfilePhases(m, opts, *window, *threshold)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "phase profile of %s (%s events, window %d, threshold %.1f):\n",
		*suite, common.group, *window, *threshold)
	for i, w := range m.Workloads {
		fmt.Fprintf(stdout, "  %-30s %3d boundaries\n", w.Workload, prof.Boundaries[i])
	}
	fmt.Fprintf(stdout, "suite mean: %.1f boundaries/workload\n", prof.MeanBoundaries)
	return nil
}

func runBaseline(args []string) error {
	fs := flag.NewFlagSet("baseline", flag.ExitOnError)
	common := addCommon(fs)
	suite := fs.String("suite", "", "suite to analyze (required)")
	k := fs.Int("k", 6, "number of flat clusters to cut")
	linkageName := fs.String("linkage", "average", "linkage: single, complete, average")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *suite == "" {
		return fmt.Errorf("baseline: -suite is required")
	}
	var linkage perspector.Linkage
	switch *linkageName {
	case "single":
		linkage = perspector.SingleLinkage
	case "complete":
		linkage = perspector.CompleteLinkage
	case "average":
		linkage = perspector.AverageLinkage
	default:
		return fmt.Errorf("baseline: unknown linkage %q", *linkageName)
	}
	cfg := common.config()
	m, err := common.measureSuite(*suite, cfg)
	if err != nil {
		return err
	}
	opts, err := common.options()
	if err != nil {
		return err
	}
	res, err := perspector.HierarchicalBaseline(m, opts, linkage, *k)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "prior-work pipeline on %s (%s linkage, k=%d, %d PCA components):\n",
		*suite, linkage, res.K, res.RetainedComponents)
	fmt.Fprintf(stdout, "silhouette of the cut: %.4f\n\n", res.Silhouette)
	for c := 0; c < res.K; c++ {
		fmt.Fprintf(stdout, "cluster %d (representative: %s):\n", c, m.Workloads[res.Representatives[c]].Workload)
		for i, l := range res.Labels {
			if l == c {
				fmt.Fprintf(stdout, "  %s\n", m.Workloads[i].Workload)
			}
		}
	}
	return nil
}
