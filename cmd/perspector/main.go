// Command perspector scores benchmark suites on the built-in
// microarchitecture simulator, reproducing the tool of "Perspector:
// Benchmarking Benchmark Suites" (DATE 2023).
//
// Subcommands:
//
//	perspector list
//	    List the registered suites, their workloads, and the PMU counters.
//
//	perspector score -suite parsec [-group all|llc|tlb] [-instr N] [-samples N] [-seed N] [-json]
//	    Measure one suite and print its four Perspector scores. -json
//	    emits the same ScoreSet document the perspectord service serves.
//
//	perspector compare [-suites parsec,spec17,...] [-suite-files a.json,b.json] [-group ...] [-json]
//	    Measure several suites and score them under joint normalization
//	    (the paper's Fig. 3 methodology). Default: all six stock suites.
//
//	perspector validate spec.json [more.json ...]
//	    Check declarative suite-spec files: decode, build, and compile
//	    every workload without simulating.
//
//	perspector subset -suite spec17 -size 8 [-subsetseed N]
//	    Generate a representative subset via Latin Hypercube Sampling
//	    (§IV-C) and report the score deviation.
//
//	perspector dump -suite nbench
//	    Print the workload × counter matrix as CSV.
//
//	perspector phases -suite parsec -workload parsec.x264 -counter LLC-load-misses
//	    Detect phase boundaries in one workload's counter series.
//
//	perspector profile -suite parsec
//	    Per-workload phase-boundary counts across the event group.
//
//	perspector baseline -suite spec17 -k 6 [-linkage average]
//	    Run the prior-work pipeline (PCA + hierarchical clustering) the
//	    paper's §II critiques, with the silhouette Perspector adds.
//
//	perspector redundancy -suite spec17 [-threshold 0.9]
//	    Report strongly correlated (droppable) PMU counter pairs.
//
//	perspector export -suite nbench -o trace.json [-format json|csv]
//	perspector score-file -f trace.json [-format json|csv] [-name imported]
//	    Archive measurements and score external (e.g. perf-derived) data.
//	    With -follow the file is tailed: every appended workload or sample
//	    chunk is rescored incrementally and printed as it lands.
//
// Every command that takes -suite also accepts -suite-file <spec.json>
// to operate on a user-authored declarative suite instead of a
// registered one; see the "Custom suites" section of the README.
//
// Every measuring subcommand takes -timeout (context deadline) and obeys
// Ctrl-C: the run context is cancelled, the simulator loops stop within
// one sample batch, and the command exits non-zero with an error naming
// the stage and suite that was interrupted.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"perspector"
	"perspector/internal/buildinfo"
	"perspector/internal/cli"
	"perspector/internal/perf"
	"perspector/internal/source"
	"perspector/internal/store"
	"perspector/internal/workload"
)

// stdout is the destination for command output; tests swap it for a
// buffer.
var stdout io.Writer = os.Stdout

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "list":
		err = runList(args)
	case "score":
		err = runScore(args)
	case "compare":
		err = runCompare(args)
	case "subset":
		err = runSubset(args)
	case "dump":
		err = runDump(args)
	case "phases":
		err = runPhases(args)
	case "profile":
		err = runProfile(args)
	case "baseline":
		err = runBaseline(args)
	case "export":
		err = runExport(args)
	case "score-file":
		err = runScoreFile(args)
	case "redundancy":
		err = runRedundancy(args)
	case "validate":
		err = runValidate(args)
	case "version", "-version", "--version":
		buildinfo.Print(stdout, "perspector")
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "perspector: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "perspector:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: perspector <command> [flags]

commands:
  list      list registered suites, workloads and PMU counters
  score     score one suite
  compare   score several suites under joint normalization
  subset    generate a representative workload subset (LHS)
  dump      print the workload x counter matrix
  phases    detect phase changes in a counter time series
  profile   per-workload phase-boundary counts for a suite
  baseline  run the prior-work pipeline (PCA + hierarchical clustering)
  export    measure a suite and write a portable JSON trace
  score-file score measurements from a JSON trace or totals CSV
            (-follow tails the file and rescores incrementally)
  redundancy report strongly correlated (droppable) PMU counters
  validate  check declarative suite-spec files without simulating
  version   print the build version and Go runtime

registered suites: %s
commands taking -suite also accept -suite-file <spec.json>

run "perspector <command> -h" for command flags
`, strings.Join(perspector.SuiteNames(), ", "))
}

// commonFlags is the shared driver flag block plus the counter group,
// which only this command exposes.
type commonFlags struct {
	*cli.Flags
	group string
}

func addCommon(fs *flag.FlagSet) *commonFlags {
	c := &commonFlags{Flags: cli.AddFlags(fs)}
	fs.StringVar(&c.group, "group", "all", "event group: all, llc, tlb")
	return c
}

// suiteSel is the shared suite selector: -suite resolves a name against
// the registry, -suite-file loads a declarative spec JSON file. Exactly
// one must be given (unless the command has a default suite).
type suiteSel struct {
	name string
	file string
	def  string
}

func addSuiteSel(fs *flag.FlagSet, def string) *suiteSel {
	s := &suiteSel{def: def}
	fs.StringVar(&s.name, "suite", def, "registered suite: "+strings.Join(perspector.SuiteNames(), ", "))
	fs.StringVar(&s.file, "suite-file", "", "declarative suite-spec JSON file (instead of -suite)")
	return s
}

// given reports whether either selector flag was set.
func (s *suiteSel) given() bool { return s.name != "" || s.file != "" }

// label names the selection for output: the suite name, or the file path
// for spec files.
func (s *suiteSel) label() string {
	if s.file != "" {
		return s.file
	}
	return s.name
}

// resolve builds the selected suite under cfg. A -suite-file overrides
// the command's default suite name but conflicts with an explicit
// -suite.
func (s *suiteSel) resolve(cfg perspector.Config) (perspector.Suite, error) {
	name := s.name
	if s.file != "" && name == s.def {
		name = ""
	}
	return cli.ResolveSuite(name, s.file, cfg)
}

// measureSel resolves the selected suite and runs it through a fresh
// driver (worker bound, cache, -timeout/SIGINT context) — for the
// subcommands that measure once and then post-process without further
// simulation.
func (c *commonFlags) measureSel(sel *suiteSel) (*perspector.Measurement, error) {
	s, err := sel.resolve(c.Config())
	if err != nil {
		return nil, err
	}
	d, err := c.NewDriver()
	if err != nil {
		return nil, err
	}
	defer d.Close()
	return d.Measure(s)
}

// scoreSet builds the machine-readable ScoreSet document — the same
// schema perspectord serves over HTTP.
func (c *commonFlags) scoreSet(kind string, scores []perspector.Scores) store.ScoreSet {
	return store.New(kind, c.group, "simulator", &store.RunConfig{
		Instructions: c.Instr,
		Samples:      c.Samples,
		Seed:         c.Seed,
	}, scores)
}

// writeScoreSet emits the ScoreSet document, so CLI output pipes into
// anything that consumes the service's results. The document's content
// key also lands in the -manifest result_key via the driver.
func (c *commonFlags) writeScoreSet(d *cli.Driver, kind string, scores []perspector.Scores) error {
	set := c.scoreSet(kind, scores)
	d.SetResult(set)
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(set)
}

func (c *commonFlags) options() (perspector.Options, error) {
	opts := perspector.DefaultOptions()
	counters, err := perspector.EventGroup(c.group)
	if err != nil {
		return opts, err
	}
	opts.Counters = counters
	return opts, nil
}

func runList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	common := addCommon(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := common.Config()
	fmt.Fprintln(stdout, "suites:")
	for _, s := range perspector.RegisteredSuites(cfg) {
		fmt.Fprintf(stdout, "  %-10s %2d workloads  %s\n", s.Name, len(s.Specs), s.Description)
		if common.Verbose {
			for _, w := range s.Specs {
				fmt.Fprintf(stdout, "      %s\n", w.Name)
			}
		}
	}
	fmt.Fprintln(stdout, "\nPMU counters (Table IV):")
	for _, c := range perf.AllCounters() {
		fmt.Fprintf(stdout, "  %s\n", c)
	}
	fmt.Fprintln(stdout, "\nevent groups: all, llc, tlb")
	return nil
}

func runScore(args []string) error {
	fs := flag.NewFlagSet("score", flag.ExitOnError)
	common := addCommon(fs)
	sel := addSuiteSel(fs, "")
	repeat := fs.Int("repeat", 1, "measure with N different seeds and report mean ± sd")
	jsonOut := fs.Bool("json", false, "emit the ScoreSet JSON document perspectord serves instead of the table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !sel.given() {
		return fmt.Errorf("score: -suite or -suite-file is required")
	}
	if *repeat < 1 {
		return fmt.Errorf("score: -repeat must be >= 1")
	}
	if *jsonOut && *repeat > 1 {
		return fmt.Errorf("score: -json reports single runs; it does not support -repeat")
	}
	opts, err := common.options()
	if err != nil {
		return err
	}
	d, err := common.NewDriver()
	if err != nil {
		return err
	}
	defer d.Close()
	if *repeat == 1 {
		s, err := sel.resolve(common.Config())
		if err != nil {
			return err
		}
		m, err := d.Measure(s)
		if err != nil {
			return err
		}
		scores, err := perspector.ScoreContext(d.Context(), m, opts)
		if err != nil {
			return err
		}
		if *jsonOut {
			return common.writeScoreSet(d, store.KindScore, []perspector.Scores{scores})
		}
		d.SetResult(common.scoreSet(store.KindScore, []perspector.Scores{scores}))
		cli.ScoreHeader(stdout)
		cli.ScoreRow(stdout, scores)
		return nil
	}
	// The repeats are independent simulations under different seeds,
	// fanned out with seed order kept in the results. The suite is rebuilt
	// per seed — construction depends on cfg.Seed — which a spec file
	// supports exactly like a registered name.
	runs, err := d.MeasureSeedsFrom(sel.resolve, *repeat)
	if err != nil {
		return err
	}
	st, err := perspector.ScoreStability(runs, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s over %d seeds (mean ± sd):\n", st.Suite, st.Runs)
	fmt.Fprintf(stdout, "  cluster  %8.4f ± %.4f\n", st.Mean.Cluster, st.StdDev.Cluster)
	fmt.Fprintf(stdout, "  trend    %8.2f ± %.2f\n", st.Mean.Trend, st.StdDev.Trend)
	fmt.Fprintf(stdout, "  coverage %8.5f ± %.5f\n", st.Mean.Coverage, st.StdDev.Coverage)
	fmt.Fprintf(stdout, "  spread   %8.4f ± %.4f\n", st.Mean.Spread, st.StdDev.Spread)
	return nil
}

func runCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	common := addCommon(fs)
	list := fs.String("suites", "parsec,spec17,ligra,lmbench,nbench,sgxgauge",
		"comma-separated registered suites to compare")
	files := fs.String("suite-files", "", "comma-separated suite-spec JSON files to add to the comparison")
	rank := fs.Bool("rank", false, "print per-metric and overall rankings")
	jsonOut := fs.Bool("json", false, "emit the ScoreSet JSON document perspectord serves instead of the table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *jsonOut && *rank {
		return fmt.Errorf("compare: -json and -rank are mutually exclusive")
	}
	cfg := common.Config()
	var ss []perspector.Suite
	for _, name := range strings.Split(*list, ",") {
		if name = strings.TrimSpace(name); name != "" {
			s, err := perspector.SuiteByName(name, cfg)
			if err != nil {
				return err
			}
			ss = append(ss, s)
		}
	}
	// Spec-file suites join the comparison after the registered ones and
	// score under the same joint normalization.
	for _, path := range strings.Split(*files, ",") {
		if path = strings.TrimSpace(path); path != "" {
			s, err := perspector.LoadSuiteFile(path, cfg)
			if err != nil {
				return err
			}
			ss = append(ss, s)
		}
	}
	if len(ss) == 0 {
		return fmt.Errorf("compare: no suites given")
	}
	opts, err := common.options()
	if err != nil {
		return err
	}
	d, err := common.NewDriver()
	if err != nil {
		return err
	}
	defer d.Close()
	ms, err := d.MeasureSuites(ss)
	if err != nil {
		return err
	}
	scores, err := perspector.CompareContext(d.Context(), ms, opts)
	if err != nil {
		return err
	}
	if *jsonOut {
		return common.writeScoreSet(d, store.KindCompare, scores)
	}
	d.SetResult(common.scoreSet(store.KindCompare, scores))
	cli.ScoreHeader(stdout)
	for _, s := range scores {
		cli.ScoreRow(stdout, s)
	}
	if *rank {
		r, err := perspector.Rank(scores)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "\nrankings (best first):")
		fmt.Fprintf(stdout, "  %-12s %s\n", "cluster:", strings.Join(r.ByCluster, " > "))
		fmt.Fprintf(stdout, "  %-12s %s\n", "trend:", strings.Join(r.ByTrend, " > "))
		fmt.Fprintf(stdout, "  %-12s %s\n", "coverage:", strings.Join(r.ByCoverage, " > "))
		fmt.Fprintf(stdout, "  %-12s %s\n", "spread:", strings.Join(r.BySpread, " > "))
		fmt.Fprintln(stdout, "\noverall (mean rank):")
		for _, name := range r.Overall {
			fmt.Fprintf(stdout, "  %-12s %.2f\n", name, r.MeanRank[name])
		}
	}
	return nil
}

func runSubset(args []string) error {
	fs := flag.NewFlagSet("subset", flag.ExitOnError)
	common := addCommon(fs)
	sel := addSuiteSel(fs, "spec17")
	size := fs.Int("size", 8, "subset size")
	subsetSeed := fs.Uint64("subsetseed", 0, "LHS seed (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := common.Config()
	s, err := sel.resolve(cfg)
	if err != nil {
		return err
	}
	m, err := common.measureSel(sel)
	if err != nil {
		return err
	}
	opts, err := common.options()
	if err != nil {
		return err
	}
	so := perspector.DefaultSubsetOptions(*size)
	if *subsetSeed != 0 {
		so.Seed = *subsetSeed
	}
	res, err := perspector.GenerateSubset(m, opts, so)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "subset of %s (%d of %d workloads):\n", sel.label(), *size, len(s.Specs))
	for _, n := range res.Names {
		fmt.Fprintln(stdout, "  ", n)
	}
	fmt.Fprintln(stdout)
	cli.ScoreHeader(stdout)
	full := res.Full
	full.Suite = "full"
	sub := res.Subset
	sub.Suite = "subset"
	cli.ScoreRow(stdout, full)
	cli.ScoreRow(stdout, sub)
	fmt.Fprintf(stdout, "mean relative deviation: %.2f%%\n", 100*res.Deviation)
	return nil
}

func runDump(args []string) error {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	common := addCommon(fs)
	sel := addSuiteSel(fs, "")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !sel.given() {
		return fmt.Errorf("dump: -suite or -suite-file is required")
	}
	m, err := common.measureSel(sel)
	if err != nil {
		return err
	}
	counters, err := perspector.EventGroup(common.group)
	if err != nil {
		return err
	}
	// CSV header.
	fmt.Fprint(stdout, "workload")
	for _, c := range counters {
		fmt.Fprintf(stdout, ",%s", c)
	}
	fmt.Fprintln(stdout)
	for _, w := range m.Workloads {
		fmt.Fprint(stdout, w.Workload)
		for _, c := range counters {
			fmt.Fprintf(stdout, ",%d", w.Totals.Get(c))
		}
		fmt.Fprintln(stdout)
	}
	return nil
}

func runPhases(args []string) error {
	fs := flag.NewFlagSet("phases", flag.ExitOnError)
	common := addCommon(fs)
	sel := addSuiteSel(fs, "")
	workloadName := fs.String("workload", "", "workload name (required)")
	counterName := fs.String("counter", "LLC-load-misses", "PMU counter")
	window := fs.Int("window", 5, "detector half-window in samples")
	threshold := fs.Float64("threshold", 2, "detector threshold in local-noise units")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !sel.given() || *workloadName == "" {
		return fmt.Errorf("phases: -suite (or -suite-file) and -workload are required")
	}
	m, err := common.measureSel(sel)
	if err != nil {
		return err
	}
	counter, err := perf.ParseCounter(*counterName)
	if err != nil {
		return err
	}
	for _, w := range m.Workloads {
		if w.Workload != *workloadName {
			continue
		}
		series := w.Series.Series(counter)
		changes, err := perspector.DetectPhases(series, *window, *threshold)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s / %s: %d samples, %d phase boundaries\n",
			*workloadName, counter, len(series), len(changes))
		for _, c := range changes {
			pct := 100 * float64(c.Index) / float64(len(series))
			fmt.Fprintf(stdout, "  sample %4d (%5.1f%% of execution)  shift %.1f\n",
				c.Index, pct, c.Shift)
		}
		return nil
	}
	return fmt.Errorf("phases: workload %q not found in %s (try 'perspector list -v')",
		*workloadName, sel.label())
}

func runExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	common := addCommon(fs)
	sel := addSuiteSel(fs, "")
	out := fs.String("o", "", "output file (default stdout)")
	format := fs.String("format", "json", "output format: json (full) or csv (totals)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !sel.given() {
		return fmt.Errorf("export: -suite or -suite-file is required")
	}
	if *format == "csv" {
		// The CSV format carries totals only, so the measurement can take
		// the counters-only fast path; totals are bit-identical either way.
		common.TotalsOnly = true
	}
	m, err := common.measureSel(sel)
	if err != nil {
		return err
	}
	var w io.Writer = stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "json":
		return perspector.ExportJSON(w, m)
	case "csv":
		counters, err := perspector.EventGroup(common.group)
		if err != nil {
			return err
		}
		return perspector.ExportCSV(w, m, counters)
	default:
		return fmt.Errorf("export: unknown format %q", *format)
	}
}

func runScoreFile(args []string) error {
	fs := flag.NewFlagSet("score-file", flag.ExitOnError)
	common := addCommon(fs)
	path := fs.String("f", "", "trace file (required)")
	format := fs.String("format", "json", "input format: json or csv")
	suiteName := fs.String("name", "imported", "suite name for csv input")
	follow := fs.Bool("follow", false, "tail the file: rescore incrementally as it grows, one table row per change (stop with Ctrl-C or -timeout)")
	poll := fs.Duration("poll", time.Second, "file poll interval under -follow")
	maxUpdates := fs.Int("max-updates", 0, "stop -follow after this many score updates (0 = until interrupted)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" {
		return fmt.Errorf("score-file: -f is required")
	}
	if *format != "json" && *format != "csv" {
		return fmt.Errorf("score-file: unknown format %q", *format)
	}
	opts, err := common.options()
	if err != nil {
		return err
	}
	d, err := common.NewDriver()
	if err != nil {
		return err
	}
	defer d.Close()
	src := source.TraceFile{Path: *path, Format: *format, SuiteName: *suiteName}
	if *follow {
		// Each observed change feeds the incremental engine as an append
		// (new workloads, grown totals, longer series) and is rescored at
		// delta cost — bit-identical to batch-scoring the file as it
		// stands; rewrites of history fall back to an exact rebuild.
		return cli.FollowScores(d.Context(), cli.FollowOptions{
			Parse: func() (*perf.SuiteMeasurement, error) {
				return src.Measure(d.Context(), perspector.Suite{})
			},
			Stat: func() (string, error) {
				fi, err := os.Stat(*path)
				if err != nil {
					return "", err
				}
				return fmt.Sprintf("%d-%d", fi.Size(), fi.ModTime().UnixNano()), nil
			},
			Opts:       opts,
			Poll:       *poll,
			Out:        stdout,
			MaxUpdates: *maxUpdates,
		})
	}
	m, err := src.Measure(d.Context(), perspector.Suite{})
	if err != nil {
		return err
	}
	// CSV input has no time series: the engine's capability check skips
	// the TrendScore rather than fail; report the three that ran.
	hasSeries := len(m.Workloads) > 0 && m.Workloads[0].Series.Len() > 0
	if !hasSeries {
		x, err := perspector.ScoreTotalsOnly(m, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%-10s %12s %12s %12s\n", "suite", "cluster(-)", "coverage(+)", "spread(-)")
		fmt.Fprintf(stdout, "%-10s %12.4f %12.5f %12.4f\n", x.Suite, x.Cluster, x.Coverage, x.Spread)
		fmt.Fprintln(stdout, "(no time-series data in input: TrendScore unavailable)")
		return nil
	}
	scores, err := perspector.ScoreContext(d.Context(), m, opts)
	if err != nil {
		return err
	}
	cli.ScoreHeader(stdout)
	cli.ScoreRow(stdout, scores)
	return nil
}

func runRedundancy(args []string) error {
	fs := flag.NewFlagSet("redundancy", flag.ExitOnError)
	common := addCommon(fs)
	sel := addSuiteSel(fs, "")
	threshold := fs.Float64("threshold", 0.9, "minimum |Pearson r| to report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !sel.given() {
		return fmt.Errorf("redundancy: -suite or -suite-file is required")
	}
	m, err := common.measureSel(sel)
	if err != nil {
		return err
	}
	opts, err := common.options()
	if err != nil {
		return err
	}
	pairs, err := perspector.CounterRedundancy(m, opts, *threshold)
	if err != nil {
		return err
	}
	if len(pairs) == 0 {
		fmt.Fprintf(stdout, "no counter pairs with |r| >= %.2f in %s\n", *threshold, sel.label())
		return nil
	}
	fmt.Fprintf(stdout, "redundant counter pairs in %s (|r| >= %.2f):\n", sel.label(), *threshold)
	for _, p := range pairs {
		fmt.Fprintf(stdout, "  %-32s ~ %-32s r = %+.3f\n", p.A, p.B, p.R)
	}
	fmt.Fprintln(stdout, "\ndropping one of each pair frees a hardware counter without losing signal")
	return nil
}

func runProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	common := addCommon(fs)
	sel := addSuiteSel(fs, "")
	window := fs.Int("window", 5, "detector half-window in samples")
	threshold := fs.Float64("threshold", 2.5, "detector threshold in local-noise units")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !sel.given() {
		return fmt.Errorf("profile: -suite or -suite-file is required")
	}
	m, err := common.measureSel(sel)
	if err != nil {
		return err
	}
	opts, err := common.options()
	if err != nil {
		return err
	}
	prof, err := perspector.ProfilePhases(m, opts, *window, *threshold)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "phase profile of %s (%s events, window %d, threshold %.1f):\n",
		sel.label(), common.group, *window, *threshold)
	for i, w := range m.Workloads {
		fmt.Fprintf(stdout, "  %-30s %3d boundaries\n", w.Workload, prof.Boundaries[i])
	}
	fmt.Fprintf(stdout, "suite mean: %.1f boundaries/workload\n", prof.MeanBoundaries)
	return nil
}

func runBaseline(args []string) error {
	fs := flag.NewFlagSet("baseline", flag.ExitOnError)
	common := addCommon(fs)
	sel := addSuiteSel(fs, "")
	k := fs.Int("k", 6, "number of flat clusters to cut")
	linkageName := fs.String("linkage", "average", "linkage: single, complete, average")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !sel.given() {
		return fmt.Errorf("baseline: -suite or -suite-file is required")
	}
	var linkage perspector.Linkage
	switch *linkageName {
	case "single":
		linkage = perspector.SingleLinkage
	case "complete":
		linkage = perspector.CompleteLinkage
	case "average":
		linkage = perspector.AverageLinkage
	default:
		return fmt.Errorf("baseline: unknown linkage %q", *linkageName)
	}
	m, err := common.measureSel(sel)
	if err != nil {
		return err
	}
	opts, err := common.options()
	if err != nil {
		return err
	}
	res, err := perspector.HierarchicalBaseline(m, opts, linkage, *k)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "prior-work pipeline on %s (%s linkage, k=%d, %d PCA components):\n",
		sel.label(), linkage, res.K, res.RetainedComponents)
	fmt.Fprintf(stdout, "silhouette of the cut: %.4f\n\n", res.Silhouette)
	for c := 0; c < res.K; c++ {
		fmt.Fprintf(stdout, "cluster %d (representative: %s):\n", c, m.Workloads[res.Representatives[c]].Workload)
		for i, l := range res.Labels {
			if l == c {
				fmt.Fprintf(stdout, "  %s\n", m.Workloads[i].Workload)
			}
		}
	}
	return nil
}

// runValidate checks declarative suite-spec files without simulating:
// each file must decode under the strict codec, build into a suite under
// the flag config, and have every workload compile into a generator
// program. This is the CI gate for the files under examples/suites.
func runValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	common := addCommon(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()
	if len(files) == 0 {
		return fmt.Errorf("validate: no spec files given (usage: perspector validate spec.json ...)")
	}
	cfg := common.Config()
	var failed bool
	for _, path := range files {
		s, err := perspector.LoadSuiteFile(path, cfg)
		if err == nil {
			for i := range s.Specs {
				if _, cerr := workload.Compile(s.Specs[i]); cerr != nil {
					err = fmt.Errorf("workload %s: %w", s.Specs[i].Name, cerr)
					break
				}
			}
		}
		if err != nil {
			failed = true
			fmt.Fprintf(stdout, "%s: INVALID: %v\n", path, err)
			continue
		}
		var instr uint64
		for i := range s.Specs {
			instr += s.Specs[i].Instructions
		}
		fmt.Fprintf(stdout, "%s: ok — suite %q, %d workloads, %d instructions\n",
			path, s.Name, len(s.Specs), instr)
	}
	if failed {
		return fmt.Errorf("validate: invalid spec files")
	}
	return nil
}
