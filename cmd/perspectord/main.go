// Command perspectord is the resident Perspector scoring service: a
// job queue, an HTTP/JSON API, and a durable result store around the
// same engine the CLI uses — scores served over HTTP are bit-identical
// to `perspector score`/`compare` output.
//
// Quickstart:
//
//	perspectord -addr :8080 -store-dir ./perspectord-data -cache-dir ./perspector-cache
//
//	# submit a compare job for two stock suites
//	curl -s -X POST localhost:8080/api/v1/jobs -d '{
//	  "kind": "compare", "suites": ["parsec", "nbench"],
//	  "config": {"instructions": 40000, "samples": 50, "seed": 2023}}'
//
//	# poll it, fetch the result (blocking until done), cancel another
//	curl -s localhost:8080/api/v1/jobs/j-000001
//	curl -s 'localhost:8080/api/v1/jobs/j-000001/result?wait=1'
//	curl -s -X DELETE localhost:8080/api/v1/jobs/j-000002
//
// On SIGTERM/SIGINT the server drains: the listener stops accepting,
// queued jobs are cancelled, and running jobs get -drain-timeout to
// finish before their contexts are cancelled too.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"perspector/internal/buildinfo"
	"perspector/internal/cache"
	"perspector/internal/jobs"
	"perspector/internal/par"
	"perspector/internal/server"
	"perspector/internal/store"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "perspectord:", err)
		os.Exit(1)
	}
}

// options is the parsed flag set, separated from run for testability.
type options struct {
	addr         string
	storeDir     string
	cacheDir     string
	workers      int
	jobWorkers   int
	maxQueue     int
	drainTimeout time.Duration
	enablePprof  bool
	logJSON      bool
	version      bool
}

func parseFlags(args []string) (*options, error) {
	fs := flag.NewFlagSet("perspectord", flag.ContinueOnError)
	o := &options{}
	fs.BoolVar(&o.version, "version", false, "print the build version and exit")
	fs.StringVar(&o.addr, "addr", ":8080", "listen address")
	fs.StringVar(&o.storeDir, "store-dir", "perspectord-data", "result store directory (empty = no durable results)")
	fs.StringVar(&o.cacheDir, "cache-dir", "", "measurement cache directory (empty = no cache)")
	fs.IntVar(&o.workers, "workers", 0, "engine parallelism per job (0 = all CPUs); results are identical at any count")
	fs.IntVar(&o.jobWorkers, "jobs", 2, "jobs running concurrently")
	fs.IntVar(&o.maxQueue, "max-queue", 64, "jobs allowed to wait in the queue")
	fs.DurationVar(&o.drainTimeout, "drain-timeout", 30*time.Second, "how long running jobs get to finish on shutdown")
	fs.BoolVar(&o.enablePprof, "pprof", false, "serve net/http/pprof under /debug/pprof/")
	fs.BoolVar(&o.logJSON, "log-json", false, "log in JSON instead of text")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if o.jobWorkers < 1 {
		return nil, fmt.Errorf("-jobs must be >= 1")
	}
	return o, nil
}

func run(args []string) error {
	o, err := parseFlags(args)
	if err != nil {
		return err
	}
	if o.version {
		buildinfo.Print(os.Stdout, "perspectord")
		return nil
	}
	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if o.logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	log := slog.New(handler)

	if o.workers != 0 {
		par.SetWorkers(o.workers)
	}
	var cacheStore *cache.Store
	if o.cacheDir != "" {
		if cacheStore, err = cache.Open(o.cacheDir); err != nil {
			return err
		}
	}
	var resultStore *store.Store
	if o.storeDir != "" {
		if resultStore, err = store.Open(o.storeDir); err != nil {
			return err
		}
		defer resultStore.Close()
	}

	queue := jobs.New(jobs.EngineRunner(cacheStore), jobs.Options{
		Workers:  o.jobWorkers,
		MaxQueue: o.maxQueue,
		Store:    resultStore,
		Log:      log,
	})
	srv := server.New(server.Config{
		Queue:       queue,
		Store:       resultStore,
		Cache:       cacheStore,
		Log:         log,
		EnablePprof: o.enablePprof,
	})
	httpSrv := &http.Server{
		Addr:              o.addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Info("perspectord listening", "addr", o.addr,
			"store", o.storeDir, "cache", o.cacheDir,
			"jobs", o.jobWorkers, "engine_workers", par.Workers(), "pprof", o.enablePprof)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	select {
	case err := <-errc:
		// The listener died before any signal; drain what we admitted.
		queue.Drain(context.Background())
		return err
	case <-ctx.Done():
	}

	log.Info("draining", "timeout", o.drainTimeout)
	deadline, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	// Stop the listener first so no new jobs arrive, then drain the
	// queue: queued work is cancelled, running jobs get the deadline.
	if err := httpSrv.Shutdown(deadline); err != nil {
		log.Warn("http shutdown", "error", err)
	}
	if err := queue.Drain(deadline); err != nil {
		log.Warn("drain cancelled running jobs at deadline", "error", err)
	} else {
		log.Info("drained cleanly")
	}
	return <-errc
}
