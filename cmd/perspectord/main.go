// Command perspectord is the resident Perspector scoring service: a
// job queue, an HTTP/JSON API, and a durable result store around the
// same engine the CLI uses — scores served over HTTP are bit-identical
// to `perspector score`/`compare` output.
//
// Quickstart:
//
//	perspectord -addr :8080 -store-dir ./perspectord-data -cache-dir ./perspector-cache
//
//	# submit a compare job for two stock suites
//	curl -s -X POST localhost:8080/api/v1/jobs -d '{
//	  "kind": "compare", "suites": ["parsec", "nbench"],
//	  "config": {"instructions": 40000, "samples": 50, "seed": 2023}}'
//
//	# poll it, fetch the result (blocking until done), cancel another
//	curl -s localhost:8080/api/v1/jobs/j-000001
//	curl -s 'localhost:8080/api/v1/jobs/j-000001/result?wait=1'
//	curl -s -X DELETE localhost:8080/api/v1/jobs/j-000002
//
//	# stream measurement chunks and tail the evolving scores: each chunk
//	# rescored incrementally, bit-identical to a batch run of the same data
//	curl -s -X POST localhost:8080/api/v1/streams -d '{"suites": ["live"]}'
//	curl -s -X POST localhost:8080/api/v1/streams/s-000001/chunks -d '{
//	  "workloads": [{"name": "w0", "totals": [1200, 340, ...],
//	                 "series": [[10, 20, 30], [1, 2, 3], ...]}]}'
//	curl -s 'localhost:8080/api/v1/streams/s-000001/scores?since=0&wait=1'
//	curl -s -X POST localhost:8080/api/v1/streams/s-000001/close
//
//	# benchmark trend dashboard over the benchjson history (-bench-history)
//	open http://localhost:8080/perf
//	curl -s 'localhost:8080/api/v1/perf/trends?goos=linux&goarch=amd64'
//
// # Fleet mode
//
// perspectord also runs as a coordinator/worker cluster. The
// coordinator owns the public API and routes each job by its content
// key onto a consistent-hash ring of workers; workers execute on their
// local engine and stream results back, and every node's store
// converges to the same result set through replication:
//
//	perspectord -role coordinator -addr :8080 -store-dir ./coord-data
//	perspectord -role worker -join http://localhost:8080 -node-id w1 \
//	    -addr :8081 -store-dir ./w1-data -cache-dir ./w1-cache
//
// On SIGTERM/SIGINT the server drains: the listener stops accepting,
// queued jobs are cancelled, and running jobs get -drain-timeout to
// finish before their contexts are cancelled too. A worker drains
// gracefully: it stops pulling, finishes in-flight dispatches, pushes
// their results, and leaves the fleet.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"perspector/internal/buildinfo"
	"perspector/internal/cache"
	"perspector/internal/fleet"
	"perspector/internal/jobs"
	"perspector/internal/par"
	"perspector/internal/perfhist"
	"perspector/internal/server"
	"perspector/internal/store"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "perspectord:", err)
		os.Exit(1)
	}
}

// options is the parsed flag set, separated from run for testability.
type options struct {
	addr         string
	storeDir     string
	cacheDir     string
	workers      int
	jobWorkers   int
	maxQueue     int
	maxStreams   int
	benchHistory string
	drainTimeout time.Duration
	enablePprof  bool
	logJSON      bool
	version      bool

	role        string
	join        string
	nodeID      string
	capacity    int
	tenantRate  float64
	tenantBurst int
}

func parseFlags(args []string) (*options, error) {
	fs := flag.NewFlagSet("perspectord", flag.ContinueOnError)
	o := &options{}
	fs.BoolVar(&o.version, "version", false, "print the build version and exit")
	fs.StringVar(&o.addr, "addr", ":8080", "listen address")
	fs.StringVar(&o.storeDir, "store-dir", "perspectord-data", "result store directory (empty = no durable results)")
	fs.StringVar(&o.cacheDir, "cache-dir", "", "measurement cache directory (empty = no cache)")
	fs.IntVar(&o.workers, "workers", 0, "engine parallelism per job (0 = all CPUs); results are identical at any count")
	fs.IntVar(&o.jobWorkers, "jobs", 2, "jobs running concurrently")
	fs.IntVar(&o.maxQueue, "max-queue", 64, "jobs allowed to wait in the queue")
	fs.IntVar(&o.maxStreams, "max-streams", jobs.DefaultMaxStreams, "concurrent incremental-scoring streams")
	fs.StringVar(&o.benchHistory, "bench-history", "BENCH_history.jsonl", "benchjson history served on /perf and /api/v1/perf/* (empty disables; reloads live as runs append)")
	fs.DurationVar(&o.drainTimeout, "drain-timeout", 30*time.Second, "how long running jobs get to finish on shutdown")
	fs.BoolVar(&o.enablePprof, "pprof", false, "serve net/http/pprof under /debug/pprof/")
	fs.BoolVar(&o.logJSON, "log-json", false, "log in JSON instead of text")
	fs.StringVar(&o.role, "role", "single", "node role: single, coordinator, or worker")
	fs.StringVar(&o.join, "join", "", "coordinator URL a worker registers with (role worker)")
	fs.StringVar(&o.nodeID, "node-id", "", "stable fleet node name (default: hostname)")
	fs.IntVar(&o.capacity, "capacity", 0, "dispatches a worker runs concurrently (0 = -jobs)")
	fs.Float64Var(&o.tenantRate, "tenant-rate", 0, "per-tenant submissions/second quota (0 = unlimited)")
	fs.IntVar(&o.tenantBurst, "tenant-burst", 10, "per-tenant submission burst")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if o.jobWorkers < 1 {
		return nil, fmt.Errorf("-jobs must be >= 1")
	}
	switch o.role {
	case "single", "coordinator":
	case "worker":
		if o.join == "" {
			return nil, fmt.Errorf("-role worker requires -join <coordinator URL>")
		}
		if o.storeDir == "" {
			return nil, fmt.Errorf("-role worker requires a -store-dir for its result replica")
		}
	default:
		return nil, fmt.Errorf("unknown -role %q (want single, coordinator, or worker)", o.role)
	}
	if o.capacity == 0 {
		o.capacity = o.jobWorkers
	}
	if o.nodeID == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = fmt.Sprintf("node-%d", os.Getpid())
		}
		o.nodeID = host
	}
	return o, nil
}

func run(args []string) error {
	o, err := parseFlags(args)
	if err != nil {
		return err
	}
	if o.version {
		buildinfo.Print(os.Stdout, "perspectord")
		return nil
	}
	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if o.logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	// Every log line carries the node's identity, so interleaved fleet
	// logs (or logs shipped to one aggregator) attribute to their node
	// without parsing free text.
	log := slog.New(handler).With("node_id", o.nodeID)

	if o.workers != 0 {
		par.SetWorkers(o.workers)
	}
	var cacheStore *cache.Store
	if o.cacheDir != "" {
		if cacheStore, err = cache.Open(o.cacheDir); err != nil {
			return err
		}
	}
	var resultStore *store.Store
	if o.storeDir != "" {
		if resultStore, err = store.Open(o.storeDir); err != nil {
			return err
		}
		defer resultStore.Close()
	}

	// The queue's runner is the role switch: single and worker nodes
	// execute on the local engine; a coordinator's queue dispatches into
	// the fleet, so dedup/replay/cancel/drain stay fleet-wide.
	var coord *fleet.Coordinator
	runner := jobs.EngineRunner(cacheStore)
	if o.role == "coordinator" {
		coord = fleet.NewCoordinator(fleet.CoordinatorOptions{Store: resultStore, Log: log})
		defer coord.Close()
		runner = jobs.RemoteRunner(coord)
	}
	queue := jobs.New(runner, jobs.Options{
		Workers:  o.jobWorkers,
		MaxQueue: o.maxQueue,
		Store:    resultStore,
		Log:      log,
	})

	// Streams score pure measurement chunks (no simulation), so every
	// role serves them locally: a coordinator does not route them into
	// the fleet, and a worker serves whatever streams clients open on it.
	streams := jobs.NewStreamManager(jobs.StreamOptions{
		Store:      resultStore,
		MaxStreams: o.maxStreams,
		Log:        log,
	})

	var worker *fleet.Worker
	if o.role == "worker" {
		worker, err = fleet.NewWorker(fleet.WorkerOptions{
			Coordinator: o.join,
			NodeID:      o.nodeID,
			Capacity:    o.capacity,
			Queue:       queue,
			Store:       resultStore,
			Log:         log,
		})
		if err != nil {
			return err
		}
	}

	cfg := server.Config{
		Queue:       queue,
		Streams:     streams,
		Store:       resultStore,
		Cache:       cacheStore,
		Log:         log,
		EnablePprof: o.enablePprof,
		Role:        o.role,
		Coordinator: coord,
		Quota:       fleet.NewTenantLimiter(o.tenantRate, o.tenantBurst),
	}
	if o.role != "single" {
		cfg.NodeID = o.nodeID
	}
	if o.benchHistory != "" {
		cfg.PerfHist = perfhist.NewService(o.benchHistory)
	}
	if worker != nil {
		cfg.Peers = worker.Peers
	}
	srv := server.New(cfg)
	httpSrv := &http.Server{
		Addr:              o.addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()

	var workerDone chan error
	if worker != nil {
		workerDone = make(chan error, 1)
		go func() { workerDone <- worker.Run(ctx) }()
	}

	errc := make(chan error, 1)
	go func() {
		log.Info("perspectord listening", "addr", o.addr, "role", o.role,
			"node", o.nodeID, "store", o.storeDir, "cache", o.cacheDir,
			"jobs", o.jobWorkers, "engine_workers", par.Workers(), "pprof", o.enablePprof)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	select {
	case err := <-errc:
		// The listener died before any signal; drain what we admitted.
		queue.Drain(context.Background())
		streams.Drain(context.Background())
		return err
	case <-ctx.Done():
	}

	log.Info("draining", "timeout", o.drainTimeout)
	deadline, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	// Stop the listener first so no new jobs arrive, then drain the
	// queue: queued work is cancelled, running jobs get the deadline.
	if err := httpSrv.Shutdown(deadline); err != nil {
		log.Warn("http shutdown", "error", err)
	}
	// A worker's fleet loop drains concurrently with the queue: the
	// signal context already stopped its pulls, Run waits for in-flight
	// dispatches (which the queue deadline bounds), pushes their results
	// and leaves the fleet.
	// Streams drain alongside the queue: open streams are sealed, their
	// backlogged chunks apply, a final score version publishes and
	// persists, and stragglers past the deadline are cancelled.
	drained := make(chan error, 1)
	go func() { drained <- queue.Drain(deadline) }()
	streamsDrained := make(chan error, 1)
	go func() { streamsDrained <- streams.Drain(deadline) }()
	if workerDone != nil {
		select {
		case err := <-workerDone:
			if err != nil && !errors.Is(err, context.Canceled) {
				log.Warn("fleet worker exit", "error", err)
			}
		case <-deadline.Done():
			log.Warn("fleet worker did not drain before the deadline")
		}
	}
	if err := <-streamsDrained; err != nil {
		log.Warn("drain cancelled open streams at deadline", "error", err)
	}
	if err := <-drained; err != nil {
		log.Warn("drain cancelled running jobs at deadline", "error", err)
	} else {
		log.Info("drained cleanly")
	}
	return <-errc
}
