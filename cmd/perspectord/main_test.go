package main

import (
	"testing"
	"time"
)

func TestParseFlagsDefaults(t *testing.T) {
	o, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.addr != ":8080" || o.storeDir != "perspectord-data" || o.cacheDir != "" {
		t.Errorf("default paths: %+v", o)
	}
	if o.jobWorkers != 2 || o.maxQueue != 64 || o.drainTimeout != 30*time.Second {
		t.Errorf("default queue shape: %+v", o)
	}
	if o.enablePprof || o.logJSON {
		t.Errorf("debug flags on by default: %+v", o)
	}
}

func TestParseFlagsOverridesAndErrors(t *testing.T) {
	o, err := parseFlags([]string{
		"-addr", ":9090", "-store-dir", "", "-cache-dir", "/tmp/c",
		"-jobs", "4", "-max-queue", "8", "-drain-timeout", "5s",
		"-pprof", "-log-json",
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.addr != ":9090" || o.storeDir != "" || o.cacheDir != "/tmp/c" ||
		o.jobWorkers != 4 || o.maxQueue != 8 || o.drainTimeout != 5*time.Second ||
		!o.enablePprof || !o.logJSON {
		t.Errorf("overrides not applied: %+v", o)
	}
	if _, err := parseFlags([]string{"-jobs", "0"}); err == nil {
		t.Error("-jobs 0 accepted")
	}
	if _, err := parseFlags([]string{"-no-such-flag"}); err == nil {
		t.Error("unknown flag accepted")
	}
}
