// Command obscheck validates the telemetry artifacts a perspector run
// writes — the -trace-out Chrome trace and the -manifest run summary —
// so CI can assert the observability path end to end instead of only
// checking that the files exist. It decodes both documents, re-derives
// the structural invariants the recorder guarantees (unique span ids,
// parent/child interval containment, per-track nesting discipline,
// named tracks, manifest schema and ratio bounds), and exits non-zero
// with one line per violation. With -bench-history it also validates a
// benchjson BENCH_history.jsonl log (record schema, positive timings,
// monotone timestamps per commit, no undecodable lines).
//
// Usage:
//
//	obscheck [-trace trace.json] [-manifest manifest.json] [-bench-history BENCH_history.jsonl]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"perspector/internal/obs"
	"perspector/internal/perfhist"
)

func main() {
	tracePath := flag.String("trace", "", "Chrome trace-event JSON to validate")
	manifestPath := flag.String("manifest", "", "run manifest JSON to validate")
	historyPath := flag.String("bench-history", "", "benchjson history JSONL to validate")
	flag.Parse()
	if *tracePath == "" && *manifestPath == "" && *historyPath == "" {
		fmt.Fprintln(os.Stderr, "obscheck: at least one of -trace, -manifest or -bench-history is required")
		os.Exit(2)
	}
	var errs []string
	if *tracePath != "" {
		errs = append(errs, checkTrace(*tracePath)...)
	}
	if *manifestPath != "" {
		errs = append(errs, checkManifest(*manifestPath)...)
	}
	if *historyPath != "" {
		errs = append(errs, checkHistory(*historyPath)...)
	}
	if len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "obscheck:", e)
		}
		os.Exit(1)
	}
}

// event mirrors the subset of the trace-event schema obscheck verifies.
type event struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// span is one X event's interval, keyed by the recorder span id carried
// in its args.
type span struct {
	id, parent int
	start, end float64
	tid        int
	name       string
}

// eps absorbs the ns→μs float rounding WriteTrace performs; real
// containment violations are orders of magnitude larger.
const eps = 0.01

func checkTrace(path string) (errs []string) {
	fail := func(format string, args ...any) {
		errs = append(errs, "trace: "+fmt.Sprintf(format, args...))
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return []string{err.Error()}
	}
	var file struct {
		TraceEvents     []event `json:"traceEvents"`
		DisplayTimeUnit string  `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &file); err != nil {
		return []string{"trace: invalid JSON: " + err.Error()}
	}
	if file.DisplayTimeUnit == "" {
		fail("missing displayTimeUnit")
	}

	tracks := map[int]string{} // tid → thread_name
	spans := map[int]span{}
	perTid := map[int][]span{}
	for i, ev := range file.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				name, _ := ev.Args["name"].(string)
				if name == "" {
					fail("event %d: thread_name metadata without a name", i)
				}
				tracks[ev.Tid] = name
			}
		case "X":
			if ev.Dur == nil || *ev.Dur < 0 {
				fail("event %d (%s): missing or negative dur", i, ev.Name)
				continue
			}
			id, ok := asInt(ev.Args["span"])
			if !ok {
				fail("event %d (%s): args.span missing", i, ev.Name)
				continue
			}
			parent, ok := asInt(ev.Args["parent"])
			if !ok {
				fail("event %d (%s): args.parent missing", i, ev.Name)
				continue
			}
			if _, dup := spans[id]; dup {
				fail("span id %d appears twice", id)
				continue
			}
			sp := span{id: id, parent: parent, start: ev.Ts, end: ev.Ts + *ev.Dur, tid: ev.Tid, name: ev.Name}
			spans[id] = sp
			perTid[ev.Tid] = append(perTid[ev.Tid], sp)
		default:
			fail("event %d: unexpected phase %q", i, ev.Ph)
		}
	}
	if len(spans) == 0 {
		fail("no X events — the run recorded no spans")
	}

	// Parent containment: every child interval sits inside its parent's.
	for _, sp := range spans {
		if sp.parent < 0 {
			continue
		}
		p, ok := spans[sp.parent]
		if !ok {
			fail("span %d (%s): parent %d has no event", sp.id, sp.name, sp.parent)
			continue
		}
		if sp.start < p.start-eps || sp.end > p.end+eps {
			fail("span %d (%s) [%.3f, %.3f] escapes parent %d (%s) [%.3f, %.3f]",
				sp.id, sp.name, sp.start, sp.end, p.id, p.name, p.start, p.end)
		}
	}

	// Track discipline: every tid is named, and its events strictly nest.
	tids := make([]int, 0, len(perTid))
	for tid := range perTid {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		if tracks[tid] == "" {
			fail("tid %d has events but no thread_name metadata", tid)
		}
		evs := perTid[tid]
		sort.Slice(evs, func(a, b int) bool {
			if evs[a].start != evs[b].start {
				return evs[a].start < evs[b].start
			}
			return evs[a].end > evs[b].end
		})
		var stack []span
		for _, sp := range evs {
			for len(stack) > 0 && stack[len(stack)-1].end <= sp.start+eps {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 && sp.end > stack[len(stack)-1].end+eps {
				fail("track %q: span %d (%s) partially overlaps span %d (%s)",
					tracks[tid], sp.id, sp.name, stack[len(stack)-1].id, stack[len(stack)-1].name)
			}
			stack = append(stack, sp)
		}
	}
	if len(errs) == 0 {
		fmt.Printf("trace ok: %d spans on %d tracks\n", len(spans), len(perTid))
	}
	return errs
}

func checkManifest(path string) (errs []string) {
	fail := func(format string, args ...any) {
		errs = append(errs, "manifest: "+fmt.Sprintf(format, args...))
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return []string{err.Error()}
	}
	var m obs.Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return []string{"manifest: invalid JSON: " + err.Error()}
	}
	if m.Schema != obs.ManifestSchemaVersion {
		fail("schema = %d, want %d", m.Schema, obs.ManifestSchemaVersion)
	}
	if m.WallSeconds <= 0 {
		fail("wall_seconds = %g, want > 0", m.WallSeconds)
	}
	if m.Spans <= 0 {
		fail("spans = %d, want > 0", m.Spans)
	}
	if len(m.Stages) == 0 {
		fail("no stages recorded")
	}
	for _, st := range m.Stages {
		if st.Name == "" {
			fail("stage with empty name")
		}
		if st.Count < 1 {
			fail("stage %q: count = %d, want >= 1", st.Name, st.Count)
		}
		if st.Seconds < 0 {
			fail("stage %q: seconds = %g, want >= 0", st.Name, st.Seconds)
		}
	}
	for _, w := range m.Workers {
		if w.BusySeconds < 0 || w.BusyFraction < 0 || w.BusyFraction > 1+1e-9 {
			fail("worker %d: busy %gs fraction %g out of range", w.Worker, w.BusySeconds, w.BusyFraction)
		}
	}
	if m.Cache != nil {
		if m.Cache.Hits < 0 || m.Cache.Misses < 0 || m.Cache.HitRatio < 0 || m.Cache.HitRatio > 1 {
			fail("cache block out of range: %+v", *m.Cache)
		}
	}
	if m.ResultKey != "" {
		if len(m.ResultKey) != 64 {
			fail("result_key %q is not a SHA-256 hex digest", m.ResultKey)
		}
		for _, c := range m.ResultKey {
			if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
				fail("result_key %q is not lowercase hex", m.ResultKey)
				break
			}
		}
	}
	if len(errs) == 0 {
		fmt.Printf("manifest ok: %d stages, %d workers, %d spans in %.3fs\n",
			len(m.Stages), len(m.Workers), m.Spans, m.WallSeconds)
	}
	return errs
}

// checkHistory validates a benchjson history log: every line must
// decode to a well-formed record (no torn tails tolerated here — CI
// writes the file it checks, so corruption is a real failure), and
// timestamps must be monotone per commit in file order.
func checkHistory(path string) (errs []string) {
	f, err := os.Open(path)
	if err != nil {
		return []string{"history: " + err.Error()}
	}
	defer f.Close()
	for _, v := range perfhist.CheckLog(f) {
		errs = append(errs, "history: "+v)
	}
	if len(errs) == 0 {
		if hist, err := perfhist.Load(context.Background(), path); err == nil {
			fmt.Printf("history ok: %d records\n", len(hist.Records))
		}
	}
	return errs
}

// asInt accepts the float64 that encoding/json produces for numbers.
func asInt(v any) (int, bool) {
	f, ok := v.(float64)
	if !ok {
		return 0, false
	}
	return int(f), true
}
