package perspector_test

// Godoc examples: compiled with the tests (examples without an Output
// comment are not executed, so they stay fast and robust to calibration
// changes while documenting the API shapes).

import (
	"fmt"
	"log"
	"os"

	"perspector"
)

// Example shows the quickstart flow: measure one stock suite and print
// its four scores.
func Example() {
	cfg := perspector.DefaultConfig()
	suite, err := perspector.SuiteByName("parsec", cfg)
	if err != nil {
		log.Fatal(err)
	}
	meas, err := perspector.Measure(suite, cfg)
	if err != nil {
		log.Fatal(err)
	}
	scores, err := perspector.Score(meas, perspector.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster=%.3f trend=%.1f coverage=%.4f spread=%.3f\n",
		scores.Cluster, scores.Trend, scores.Coverage, scores.Spread)
}

// ExampleCompare reproduces the paper's Fig. 3 methodology: score several
// suites under joint normalization so Coverage and Spread are directly
// comparable.
func ExampleCompare() {
	cfg := perspector.DefaultConfig()
	ms, err := perspector.MeasureAll(cfg)
	if err != nil {
		log.Fatal(err)
	}
	scores, err := perspector.Compare(ms, perspector.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	ranking, err := perspector.Rank(scores)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("best coverage:", ranking.ByCoverage[0])
}

// ExampleNewSuite builds a custom two-workload suite from access-pattern
// specs.
func ExampleNewSuite() {
	cfg := perspector.DefaultConfig()
	suite, err := perspector.NewSuite("mine", []perspector.Workload{
		{
			Name: "scan", Instructions: cfg.Instructions, Seed: 1,
			Phases: []perspector.Phase{{
				Name: "sweep", Weight: 1, LoadFrac: 0.5,
				LoadPattern: perspector.Sequential{WorkingSet: 64 << 20},
			}},
		},
		{
			Name: "lookup", Instructions: cfg.Instructions, Seed: 2,
			Phases: []perspector.Phase{{
				Name: "probe", Weight: 1, LoadFrac: 0.45, BranchFrac: 0.15,
				LoadPattern:      perspector.PointerChase{WorkingSet: 32 << 20},
				BranchRegularity: 0.4, BranchTakenProb: 0.5,
			}},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(suite.Name, len(suite.Specs))
}

// ExampleGenerateSubset reduces SPEC'17 to a representative subset via
// Latin Hypercube Sampling (§IV-C).
func ExampleGenerateSubset() {
	cfg := perspector.DefaultConfig()
	suite, _ := perspector.SuiteByName("spec17", cfg)
	meas, err := perspector.Measure(suite, cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := perspector.GenerateSubset(meas, perspector.DefaultOptions(),
		perspector.DefaultSubsetOptions(8))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deviation %.1f%%: %v\n", 100*res.Deviation, res.Names)
}

// ExampleExportJSON archives a measurement for later re-scoring.
func ExampleExportJSON() {
	cfg := perspector.DefaultConfig()
	suite, _ := perspector.SuiteByName("nbench", cfg)
	meas, err := perspector.Measure(suite, cfg)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create("nbench.trace.json")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := perspector.ExportJSON(f, meas); err != nil {
		log.Fatal(err)
	}
}

// ExampleAugment grows a seed suite from a candidate pool by metric.
func ExampleAugment() {
	cfg := perspector.DefaultConfig()
	base, _ := perspector.SuiteByName("nbench", cfg)
	pool, _ := perspector.SuiteByName("lmbench", cfg)
	baseMeas, err := perspector.Measure(base, cfg)
	if err != nil {
		log.Fatal(err)
	}
	poolMeas, err := perspector.Measure(pool, cfg)
	if err != nil {
		log.Fatal(err)
	}
	aug, err := perspector.Augment(baseMeas, poolMeas, perspector.DefaultOptions(), 3, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("add these workloads:", aug.Names)
}
