package perspector_test

// Integration tests: the full pipeline (suite models → simulator → PMU →
// scores) must reproduce the paper's headline orderings. These run the
// complete Fig. 3 experiment at the paper's configuration, so they take
// tens of seconds; `go test -short` skips them.

import (
	"sync"
	"testing"

	"perspector"
	"perspector/internal/perf"
)

var (
	integOnce sync.Once
	integMeas []*perspector.Measurement
	integErr  error
)

func fullMeasurements(t *testing.T) []*perspector.Measurement {
	t.Helper()
	if testing.Short() {
		t.Skip("full-budget integration test; skipped with -short")
	}
	integOnce.Do(func() {
		integMeas, integErr = perspector.MeasureAll(perspector.DefaultConfig())
	})
	if integErr != nil {
		t.Fatal(integErr)
	}
	return integMeas
}

func scoresFor(t *testing.T, group string) map[string]perspector.Scores {
	t.Helper()
	ms := fullMeasurements(t)
	opts := perspector.DefaultOptions()
	counters, err := perspector.EventGroup(group)
	if err != nil {
		t.Fatal(err)
	}
	opts.Counters = counters
	scores, err := perspector.Compare(ms, opts)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]perspector.Scores, len(scores))
	for _, s := range scores {
		out[s.Suite] = s
	}
	return out
}

func TestIntegrationFig3aClusterScore(t *testing.T) {
	s := scoresFor(t, "all")
	// Ligra's shared framework gives it the worst (highest) ClusterScore.
	for name, sc := range s {
		if name == "ligra" {
			continue
		}
		if s["ligra"].Cluster <= sc.Cluster {
			t.Errorf("ligra cluster %.4f not above %s %.4f", s["ligra"].Cluster, name, sc.Cluster)
		}
	}
}

func TestIntegrationFig3aTrendScore(t *testing.T) {
	s := scoresFor(t, "all")
	// The real-world-application suites (parsec, spec17, sgxgauge) must
	// all out-trend the kernel/micro suites (ligra, lmbench, nbench) by a
	// wide margin.
	for _, app := range []string{"parsec", "spec17", "sgxgauge"} {
		for _, micro := range []string{"ligra", "lmbench", "nbench"} {
			if s[app].Trend < 1.5*s[micro].Trend {
				t.Errorf("%s trend %.1f not well above %s %.1f",
					app, s[app].Trend, micro, s[micro].Trend)
			}
		}
	}
}

func TestIntegrationFig3aCoverageScore(t *testing.T) {
	s := scoresFor(t, "all")
	// LMbench's corner-stressing micros give it the top CoverageScore.
	for name, sc := range s {
		if name == "lmbench" {
			continue
		}
		if s["lmbench"].Coverage <= sc.Coverage {
			t.Errorf("lmbench coverage %.5f not above %s %.5f",
				s["lmbench"].Coverage, name, sc.Coverage)
		}
	}
	// Nbench's tiny steady kernels cover the least.
	for name, sc := range s {
		if name == "nbench" {
			continue
		}
		if s["nbench"].Coverage >= sc.Coverage {
			t.Errorf("nbench coverage %.5f not below %s %.5f",
				s["nbench"].Coverage, name, sc.Coverage)
		}
	}
}

func TestIntegrationFig3aSpreadScore(t *testing.T) {
	s := scoresFor(t, "all")
	// The real-application suites spread better (lower) than the micro
	// suites, whose normalized vectors pile against the axes.
	for _, app := range []string{"parsec", "spec17", "sgxgauge", "ligra"} {
		for _, micro := range []string{"lmbench", "nbench"} {
			if s[app].Spread >= s[micro].Spread {
				t.Errorf("%s spread %.4f not below %s %.4f",
					app, s[app].Spread, micro, s[micro].Spread)
			}
		}
	}
}

func TestIntegrationFig3bLLCFocused(t *testing.T) {
	s := scoresFor(t, "llc")
	// LMbench keeps the highest coverage under LLC events…
	for name, sc := range s {
		if name == "lmbench" {
			continue
		}
		if s["lmbench"].Coverage <= sc.Coverage {
			t.Errorf("lmbench LLC coverage %.5f not above %s %.5f",
				s["lmbench"].Coverage, name, sc.Coverage)
		}
	}
	// …and PARSEC + SGXGauge dominate the trend score.
	for _, top := range []string{"parsec", "sgxgauge"} {
		for _, other := range []string{"spec17", "ligra", "lmbench", "nbench"} {
			if s[top].Trend <= s[other].Trend {
				t.Errorf("%s LLC trend %.1f not above %s %.1f",
					top, s[top].Trend, other, s[other].Trend)
			}
		}
	}
	// The LLC-focused coverage of LMbench is lower than its all-events
	// coverage (the §IV-B reduction).
	all := scoresFor(t, "all")
	if s["lmbench"].Coverage >= all["lmbench"].Coverage {
		t.Errorf("lmbench LLC coverage %.5f not reduced from all-events %.5f",
			s["lmbench"].Coverage, all["lmbench"].Coverage)
	}
}

func TestIntegrationFig3cTLBFocused(t *testing.T) {
	s := scoresFor(t, "tlb")
	// The key §IV-B crossover: SPEC'17 takes the coverage lead under
	// TLB-only events.
	for name, sc := range s {
		if name == "spec17" {
			continue
		}
		if s["spec17"].Coverage <= sc.Coverage {
			t.Errorf("spec17 TLB coverage %.5f not above %s %.5f",
				s["spec17"].Coverage, name, sc.Coverage)
		}
	}
	// LMbench's TLB-focused coverage collapses harder than its LLC one.
	all := scoresFor(t, "all")
	llc := scoresFor(t, "llc")
	dropTLB := 1 - s["lmbench"].Coverage/all["lmbench"].Coverage
	dropLLC := 1 - llc["lmbench"].Coverage/all["lmbench"].Coverage
	if dropTLB <= dropLLC {
		t.Errorf("lmbench TLB drop %.1f%% not above LLC drop %.1f%%",
			100*dropTLB, 100*dropLLC)
	}
}

func TestIntegrationFig4NbenchClusters(t *testing.T) {
	s := scoresFor(t, "all")
	// Fig. 4's contrast: Nbench clusters far more than SGXGauge.
	if s["nbench"].Cluster <= 1.5*s["sgxgauge"].Cluster {
		t.Errorf("nbench cluster %.4f not well above sgxgauge %.4f",
			s["nbench"].Cluster, s["sgxgauge"].Cluster)
	}
}

func TestIntegrationFig5TrendContrast(t *testing.T) {
	ms := fullMeasurements(t)
	var nb, sp *perspector.Measurement
	for _, m := range ms {
		switch m.Suite {
		case "nbench":
			nb = m
		case "spec17":
			sp = m
		}
	}
	opts := perspector.DefaultOptions()
	opts.Counters = []perspector.Counter{perf.LLCLoadMisses}
	tNb, err := perspector.Score(nb, opts)
	if err != nil {
		t.Fatal(err)
	}
	tSp, err := perspector.Score(sp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if tSp.Trend <= 2*tNb.Trend {
		t.Errorf("spec17 LLC-miss trend %.1f not well above nbench %.1f",
			tSp.Trend, tNb.Trend)
	}
}

func TestIntegrationSubsetDeviation(t *testing.T) {
	ms := fullMeasurements(t)
	var sp *perspector.Measurement
	for _, m := range ms {
		if m.Suite == "spec17" {
			sp = m
		}
	}
	res, err := perspector.GenerateSubset(sp, perspector.DefaultOptions(),
		perspector.DefaultSubsetOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports 6.53 %; the acceptance bar allows for the
	// synthetic substrate but must stay in the same regime.
	if res.Deviation > 0.15 {
		t.Errorf("subset deviation %.1f%% outside the paper's regime (<15%%)",
			100*res.Deviation)
	}
	if len(res.Names) != 8 {
		t.Errorf("subset size %d", len(res.Names))
	}
}

func TestIntegrationPhaseDetectionOnSimulatedSeries(t *testing.T) {
	ms := fullMeasurements(t)
	var pa, nb *perspector.Measurement
	for _, m := range ms {
		switch m.Suite {
		case "parsec":
			pa = m
		case "nbench":
			nb = m
		}
	}
	countPhases := func(m *perspector.Measurement) int {
		total := 0
		for _, w := range m.Workloads {
			series := w.Series.Series(perf.LLCLoadMisses)
			drop := len(series) / 10
			changes, err := perspector.DetectPhases(series[drop:], 6, 2.5)
			if err != nil {
				t.Fatal(err)
			}
			total += len(changes)
		}
		return total
	}
	paPhases := countPhases(pa)
	nbPhases := countPhases(nb)
	if paPhases <= nbPhases {
		t.Errorf("parsec phase boundaries %d not above nbench %d", paPhases, nbPhases)
	}
}

func TestIntegrationScoreStabilityAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("stability sweep; skipped with -short")
	}
	// The Fig. 3a ClusterScore winner (ligra) must be stable across
	// simulation seeds — the finding is about the suite, not the seed.
	for _, seed := range []uint64{7, 99} {
		cfg := perspector.DefaultConfig()
		cfg.Seed = seed
		cfg.Instructions = 100_000
		cfg.Samples = 25
		var worst string
		worstVal := -1.0
		var ms []*perspector.Measurement
		for _, name := range []string{"ligra", "sgxgauge", "parsec"} {
			s, err := perspector.SuiteByName(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			m, err := perspector.Measure(s, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ms = append(ms, m)
		}
		scores, err := perspector.Compare(ms, perspector.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range scores {
			if s.Cluster > worstVal {
				worstVal = s.Cluster
				worst = s.Suite
			}
		}
		if worst != "ligra" {
			t.Errorf("seed %d: worst cluster suite is %q, want ligra", seed, worst)
		}
	}
}
