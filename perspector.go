// Package perspector quantifies the quality of benchmark suites, as
// described in "Perspector: Benchmarking Benchmark Suites" (DATE 2023).
//
// Perspector assigns four scores to a suite of workloads based on the
// hardware-counter signatures of their executions:
//
//   - ClusterScore (lower is better): how much the workloads clump
//     together in counter space — clumped workloads are redundant.
//   - TrendScore (higher is better): how diverse the workloads' counter
//     time series are, i.e. how much real phase behaviour the suite shows.
//   - CoverageScore (higher is better): how much of the counter parameter
//     space the suite's workloads cover (PCA component variance).
//   - SpreadScore (lower is better): how uniformly the workloads fill
//     that space (Kolmogorov–Smirnov distance to uniform).
//
// Because no hardware PMU is available to a pure-Go library, executions
// run on the built-in microarchitecture simulator (caches, TLBs, branch
// predictor, page-fault model) against synthetic models of six well-known
// suites — SPEC CPU2017, PARSEC, Ligra, LMbench, Nbench and SGXGauge — or
// against caller-defined workloads.
//
// # Quickstart
//
//	cfg := perspector.DefaultConfig()
//	suite, _ := perspector.SuiteByName("parsec", cfg)
//	meas, _ := perspector.Measure(suite, cfg)
//	scores, _ := perspector.Score(meas, perspector.DefaultOptions())
//	fmt.Printf("%+v\n", scores)
//
// To compare suites the way the paper's Fig. 3 does (joint normalization
// across all suites), measure each suite and call Compare.
package perspector

import (
	"context"
	"fmt"
	"io"

	"perspector/internal/cluster"
	"perspector/internal/core"
	"perspector/internal/metric"
	"perspector/internal/par"
	"perspector/internal/perf"
	"perspector/internal/suites"
	"perspector/internal/trace"
	"perspector/internal/workload"
)

// Config controls workload construction and simulator execution.
type Config = suites.Config

// DefaultConfig returns the configuration used for the paper reproduction:
// 400k instructions per workload, 100 PMU samples, the Table-II machine.
func DefaultConfig() Config { return suites.DefaultConfig() }

// Suite is a named set of workload specifications.
type Suite = suites.Suite

// Workload describes one synthetic workload (name, instruction budget,
// phases). Build custom suites from these.
type Workload = workload.Spec

// Phase is one execution phase of a workload: instruction mix, memory
// access patterns, branch behaviour and syscall rate.
type Phase = workload.Phase

// Memory access pattern specs for building custom workloads.
type (
	// Sequential sweeps a working set cyclically with a fixed stride.
	Sequential = workload.Sequential
	// Streams interleaves several independent sequential streams.
	Streams = workload.Streams
	// Random draws uniformly over the working set.
	Random = workload.Random
	// Zipf draws pages from a power-law distribution.
	Zipf = workload.Zipf
	// PointerChase walks a random permutation cycle (linked structures).
	PointerChase = workload.PointerChase
	// HotCold mixes a small hot region with a large cold one.
	HotCold = workload.HotCold
	// Alternating switches between two sub-patterns every Period accesses.
	Alternating = workload.Alternating
)

// Measurement is the result of executing every workload of a suite:
// counter totals and sampled time series per workload.
type Measurement = perf.SuiteMeasurement

// Counter identifies one of the 14 PMU events of the paper's Table IV.
type Counter = perf.Counter

// Options configures score computation (event group, PCA variance, DTW
// grid, seeds).
type Options = core.Options

// Scores holds the four Perspector metrics for one suite.
type Scores = core.Scores

// SubsetOptions configures representative-subset generation.
type SubsetOptions = core.SubsetOptions

// SubsetResult reports a generated subset and its score deviation from
// the full suite.
type SubsetResult = core.SubsetResult

// PhaseChange is one detected phase boundary in a counter time series.
type PhaseChange = core.PhaseChange

// DefaultOptions mirrors the paper's setup: all 14 counters, 98 % PCA
// variance, full DTW on a 100-point percentile grid.
func DefaultOptions() Options { return core.DefaultOptions() }

// StockSuites returns models of the six suites evaluated in the paper
// (Table III), in paper order: PARSEC, SPEC'17, Ligra, LMbench, Nbench,
// SGXGauge.
func StockSuites(cfg Config) []Suite { return suites.All(cfg) }

// SuiteByName returns one registered suite by name — the six stock
// suites plus the spec-only families ("bigdatabench", "cpu2026"). The
// error for an unknown name lists every registered suite.
func SuiteByName(name string, cfg Config) (Suite, error) { return suites.ByName(name, cfg) }

// RegisteredSuites returns every suite in the registry — the stock six
// (in paper order) followed by the spec-only families.
func RegisteredSuites(cfg Config) []Suite { return suites.Registered(cfg) }

// SuiteNames returns the names of every registered suite, stock six
// first, spec-only families after.
func SuiteNames() []string { return suites.Names() }

// LoadSuiteFile loads a declarative suite-spec JSON file (the format
// under internal/suites/specs and examples/suites) and builds it under
// cfg: unpinned workloads take cfg.Instructions and per-workload seeds
// derive from cfg.Seed, exactly as for registered suites.
func LoadSuiteFile(path string, cfg Config) (Suite, error) {
	sp, err := suites.LoadSpecFile(path)
	if err != nil {
		return Suite{}, err
	}
	return sp.Build(cfg)
}

// NewSuite builds a custom suite from caller-defined workloads. Every
// workload is validated.
func NewSuite(name string, workloads []Workload) (Suite, error) {
	if name == "" {
		return Suite{}, fmt.Errorf("perspector: suite needs a name")
	}
	if len(workloads) == 0 {
		return Suite{}, fmt.Errorf("perspector: suite %q needs at least one workload", name)
	}
	for i := range workloads {
		if err := workloads[i].Validate(); err != nil {
			return Suite{}, fmt.Errorf("perspector: suite %q workload %d: %w", name, i, err)
		}
	}
	return Suite{Name: name, Specs: workloads}, nil
}

// SetWorkers bounds the library's internal parallelism (measurement
// fan-out, pairwise DTW, k-means restarts, per-suite scoring) and returns
// the previous bound. n < 1 resets to runtime.NumCPU. Every result is
// bit-identical at any worker count — parallel reductions happen in a
// fixed serial order — so this trades only wall-clock time, never output.
// The PERSPECTOR_WORKERS environment variable sets the initial bound.
func SetWorkers(n int) int { return par.SetWorkers(n) }

// Workers reports the current parallelism bound (see SetWorkers).
func Workers() int { return par.Workers() }

// Measure executes every workload of the suite on the simulator and
// returns counter totals plus sampled time series. Execution is
// deterministic for a given Config and parallel across workloads.
func Measure(s Suite, cfg Config) (*Measurement, error) { return suites.Run(s, cfg) }

// MeasureContext is Measure with end-to-end cancellation: ctx flows
// through the worker-pool fan-out into every simulator loop, so a
// cancelled or expired context stops the run within one sample batch
// (partial measurements are discarded). Failures and cancellations carry
// the measurement stage and the suite/workload that was executing;
// errors.Is(err, context.Canceled) and context.DeadlineExceeded work
// through the wrapping.
func MeasureContext(ctx context.Context, s Suite, cfg Config) (*Measurement, error) {
	return suites.RunContext(ctx, s, cfg)
}

// MeasureAll measures all six stock suites in paper order.
func MeasureAll(cfg Config) ([]*Measurement, error) { return suites.RunAll(cfg) }

// MeasureAllContext is MeasureAll with cancellation (see MeasureContext).
func MeasureAllContext(ctx context.Context, cfg Config) ([]*Measurement, error) {
	return suites.RunAllContext(ctx, cfg)
}

// MeasureMulticore executes every workload as `threads` homologous
// process clones (private seeds and address spaces) on a shared-L3
// multicore machine — the rate-style setup. Counter totals and series
// aggregate across the clones. This extends the paper's single-core
// methodology; use Measure to reproduce the paper.
func MeasureMulticore(s Suite, cfg Config, threads int) (*Measurement, error) {
	return suites.RunMulticore(s, cfg, threads)
}

// MeasureMulticoreContext is MeasureMulticore with cancellation (see
// MeasureContext).
func MeasureMulticoreContext(ctx context.Context, s Suite, cfg Config, threads int) (*Measurement, error) {
	return suites.RunMulticoreContext(ctx, s, cfg, threads)
}

// Score computes the four Perspector scores for one suite in isolation.
// Coverage and Spread are normalized against the suite's own counter
// ranges; use Compare to score several suites against shared ranges.
func Score(m *Measurement, opts Options) (Scores, error) { return core.ScoreSuite(m, opts) }

// ScoreContext is Score with cancellation: ctx flows through the scoring
// engine's fan-outs (silhouette k-sweep, pairwise DTW, series
// normalization), so a cancelled context aborts scoring promptly with a
// stage-tagged error. Results are bit-identical to Score.
func ScoreContext(ctx context.Context, m *Measurement, opts Options) (Scores, error) {
	return metric.ScoreSuite(ctx, m, opts, nil)
}

// Compare scores several suites under the joint normalization of the
// paper's Eq. 9–10, making the Coverage and Spread scores directly
// comparable across suites — this is how Fig. 3 is produced.
func Compare(ms []*Measurement, opts Options) ([]Scores, error) {
	return core.ScoreSuites(ms, opts)
}

// CompareContext is Compare with cancellation (see ScoreContext).
func CompareContext(ctx context.Context, ms []*Measurement, opts Options) ([]Scores, error) {
	return metric.ScoreSuites(ctx, ms, opts, nil)
}

// EventGroup returns the counter subset for focused scoring (§IV-B):
// "all", "llc" or "tlb".
func EventGroup(name string) ([]Counter, error) {
	g, err := perf.GroupByName(name)
	if err != nil {
		return nil, err
	}
	return g.Counters, nil
}

// GenerateSubset selects a representative subset of a measured suite via
// Latin Hypercube Sampling over the normalized counter space (§IV-C) and
// reports how far the subset's scores deviate from the full suite's.
func GenerateSubset(m *Measurement, opts Options, so SubsetOptions) (*SubsetResult, error) {
	return core.Subset(m, opts, so)
}

// DefaultSubsetOptions returns the §IV-C configuration for the given
// subset size.
func DefaultSubsetOptions(size int) SubsetOptions { return core.DefaultSubsetOptions(size) }

// DetectPhases finds phase boundaries in a counter delta series using a
// two-window mean-shift detector (the extension the paper motivates via
// its phase-detection citation [26]).
func DetectPhases(series []float64, window int, threshold float64) ([]PhaseChange, error) {
	return core.DetectPhases(series, window, threshold)
}

// PhaseProfile summarizes the detected phase behaviour of a suite.
type PhaseProfile = core.PhaseProfile

// ProfilePhases counts phase boundaries for every workload of a measured
// suite over the selected counters.
func ProfilePhases(m *Measurement, opts Options, window int, threshold float64) (*PhaseProfile, error) {
	return core.ProfilePhases(m, opts, window, threshold)
}

// BaselineResult is the outcome of the prior-work redundancy pipeline
// (normalize → PCA → hierarchical clustering) from the paper's Table I.
type BaselineResult = core.BaselineResult

// Linkage selects the agglomeration rule of the baseline pipeline.
type Linkage = cluster.Linkage

// Linkage values for HierarchicalBaseline.
const (
	SingleLinkage   = cluster.SingleLinkage
	CompleteLinkage = cluster.CompleteLinkage
	AverageLinkage  = cluster.AverageLinkage
)

// HierarchicalBaseline runs the prior-work methodology the paper
// critiques (§II): PCA-reduce the counter matrix and cut an agglomerative
// dendrogram into k flat clusters, returning the silhouette Perspector
// adds on top and one representative workload per cluster.
func HierarchicalBaseline(m *Measurement, opts Options, linkage Linkage, k int) (*BaselineResult, error) {
	return core.HierarchicalBaseline(m, opts, linkage, k)
}

// Augmentation is the result of greedy suite construction.
type Augmentation = core.Augmentation

// AugmentObjective scores a candidate suite during greedy construction;
// higher is better.
type AugmentObjective = core.AugmentObjective

// Augment greedily adds k workloads from a measured candidate pool to a
// measured base suite, maximizing the objective (nil = the default
// balance of the four scores) at every step — metric-driven suite
// construction, the abstract's "systematically and rigorously create a
// suite of workloads".
func Augment(base, candidates *Measurement, opts Options, k int, objective AugmentObjective) (*Augmentation, error) {
	return core.Augment(base, candidates, opts, k, objective)
}

// Stability reports mean and standard deviation of the four scores
// across repeated measurements of the same suite.
type Stability = core.Stability

// ScoreStability scores several independent measurements of one suite
// (e.g. Measure with different Config seeds) and aggregates mean ± sd per
// metric — the run-to-run variation a sound comparison should report.
func ScoreStability(runs []*Measurement, opts Options) (*Stability, error) {
	return core.ScoreStability(runs, opts)
}

// ScoreTotalsOnly scores a measurement as if it carried only counter
// totals (e.g. imported from a perf-derived CSV): any time series are
// dropped, the trend metric's needs-series capability check skips it, and
// the remaining three scores go through the same engine path as Score.
// TrendScore is 0 in the result.
func ScoreTotalsOnly(m *Measurement, opts Options) (Scores, error) {
	return metric.ScoreSuite(context.Background(), metric.TotalsOnly(m), opts, nil)
}

// RedundantPair is a pair of PMU counters whose values are strongly
// correlated across a suite's workloads.
type RedundantPair = core.RedundantPair

// CounterRedundancy reports counter pairs with |Pearson r| >= threshold
// across the suite's workloads, strongest first — the counters a
// researcher can drop to stay within the hardware PMU budget without
// losing characterization power (the paper's multiplexing footnote).
func CounterRedundancy(m *Measurement, opts Options, threshold float64) ([]RedundantPair, error) {
	return core.CounterRedundancy(m, opts, threshold)
}

// Ranking orders compared suites per metric plus an overall mean-rank
// recommendation.
type Ranking = core.Ranking

// Rank turns one Compare result into per-metric and overall orderings.
func Rank(scores []Scores) (*Ranking, error) { return core.Rank(scores) }

// ExportJSON writes a measurement (totals and time series) in the
// portable trace format, so it can be archived or re-scored without
// re-simulating.
func ExportJSON(w io.Writer, m *Measurement) error { return trace.WriteJSON(w, m) }

// ImportJSON reads a measurement in the trace format. The data may come
// from ExportJSON or from an external collector (e.g. converted perf
// output) that follows the same schema; Perspector scores it exactly like
// simulated data.
func ImportJSON(r io.Reader) (*Measurement, error) { return trace.ReadJSON(r) }

// ExportCSV writes the workload × counter totals matrix.
func ExportCSV(w io.Writer, m *Measurement, counters []Counter) error {
	return trace.WriteCSV(w, m, counters)
}

// ImportCSV reads a totals matrix (no time series: TrendScore is
// unavailable on such data, the other three scores work).
func ImportCSV(r io.Reader, suiteName string) (*Measurement, error) {
	return trace.ReadCSV(r, suiteName)
}

// Calibrate adjusts each workload's instruction budget so every workload
// consumes approximately the same number of CPU cycles — the paper's
// methodology of "tweaking the input values" so execution times match
// (§IV). It probes each workload at the Config budget, derives its CPI,
// and rescales. Budgets are clamped to [minInstr, maxInstr].
func Calibrate(s Suite, cfg Config, targetCycles, minInstr, maxInstr uint64) (Suite, error) {
	return suites.Calibrate(s, cfg, targetCycles, minInstr, maxInstr)
}
