module perspector

go 1.22
